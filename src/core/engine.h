// The simulation engine.
//
// Owns ground truth: the clock, the event queue, the cluster (nodes and
// their disk caches), job progress bookkeeping, and run execution. Policies
// decide *what* runs *where*; the engine computes how long it takes and what
// it does to the caches.
//
// Runs execute span by span (DESIGN.md §6): before each span (at most
// SimConfig::maxSpanEvents events) the engine inspects the node's cache and
// picks the data source for the next contiguous chunk:
//   - locally cached  -> disk rate, extents touched (LRU refresh), pinned
//     while the span executes;
//   - cached on the run's designated remote node -> remote rate; with a
//     replication threshold t > 0, the remote extent's access counter is
//     bumped and extents reaching t are copied into the local cache (§4.2);
//   - otherwise -> tertiary rate, data inserted into the local cache (when
//     the policy uses caching), evicting LRU extents.
// Span-wise execution makes preemption exact and mid-run evictions honest.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "core/config.h"
#include "core/event_log.h"
#include "core/metrics.h"
#include "core/policy.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "workload/generator.h"

namespace ppsched {

/// When Engine::run returns.
struct StopCondition {
  std::size_t completedJobs = 0;    ///< stop after N completions (0 = off)
  std::size_t arrivedJobs = 0;      ///< stop injecting after N arrivals (0 = off)
  SimTime simTimeLimit = 0.0;       ///< stop at this sim time (0 = off)
  std::size_t maxJobsInSystem = 0;  ///< abort, marking overload (0 = off)
};

/// The simulation host: implements ISchedulerHost for the discrete-event
/// simulator (the wall-clock counterpart is runtime/realtime_host.h).
class Engine final : public ISchedulerHost {
 public:
  /// `cfg` must be finalized. The engine takes ownership of source/policy;
  /// `metrics` must outlive the engine.
  Engine(const SimConfig& cfg, std::unique_ptr<JobSource> source,
         std::unique_ptr<ISchedulerPolicy> policy, MetricsCollector& metrics);

  /// Drive the simulation until a stop condition triggers or nothing is
  /// left to do (source exhausted and all work finished).
  void run(const StopCondition& stop);

  // --- time & topology (ISchedulerHost) ----------------------------------
  [[nodiscard]] SimTime now() const override { return now_; }
  [[nodiscard]] const SimConfig& config() const override { return cfg_; }
  [[nodiscard]] int numNodes() const override { return cluster_.size(); }
  [[nodiscard]] Cluster& cluster() override { return cluster_; }
  [[nodiscard]] const Cluster& cluster() const { return cluster_; }
  [[nodiscard]] ISchedulerPolicy& policy() { return *policy_; }

  // --- node state (ISchedulerHost) ---------------------------------------
  [[nodiscard]] bool isUp(NodeId node) const override;
  [[nodiscard]] bool isIdle(NodeId node) const override;
  [[nodiscard]] std::vector<NodeId> idleNodes() const override;
  [[nodiscard]] RunningView running(NodeId node) const override;

  // --- job bookkeeping (ISchedulerHost) ----------------------------------
  [[nodiscard]] const Job& job(JobId id) const override;
  /// Events of the job not yet processed anywhere (includes parts currently
  /// being processed: they leave this set span by span).
  [[nodiscard]] const IntervalSet& remainingOf(JobId id) const override;
  [[nodiscard]] bool jobDone(JobId id) const override;
  [[nodiscard]] std::size_t jobsInSystem() const override { return metrics_.jobsInSystem(); }

  // --- policy actions (ISchedulerHost) -----------------------------------
  /// Start `sj` on an idle node. The subjob's range must be a subset of the
  /// job's remaining work (catches double assignments).
  void startRun(NodeId node, Subjob sj, AccessPlan plan = {}) override;
  using ISchedulerHost::startRun;  // keep the deprecated RunOptions shim visible

  /// Issue a cache-warming transfer of the uncached part of `range` into
  /// `dst`'s cache (see ISchedulerHost::prefetch). With the network model
  /// on, the copy is a FlowKind::Prefetch flow sharing links like any other
  /// traffic; with it off, it streams at the static device rate. No sim
  /// latency is charged (bulk streaming, not per-event access).
  void prefetch(NodeId dst, EventRange range, AccessPlan plan = {}) override;

  /// Stop the run on `node` immediately. Partial progress is applied
  /// (bookkeeping, metrics, caching); the node becomes idle. Returns the
  /// unprocessed remainder — empty if the run was exactly complete (the
  /// policy must then not requeue it). Does NOT invoke onRunFinished.
  Subjob preempt(NodeId node) override;

  /// Fire policy->onTimer(id) at absolute time `at` (>= now).
  TimerId scheduleTimer(SimTime at) override;
  void cancelTimer(TimerId id) override;

  /// Schedule an arbitrary callback at absolute time `when` (>= now). Runs
  /// as a normal simulation event; intended for scripted scenarios and
  /// failure injection (e.g. crashing a node mid-run).
  ActionId at(SimTime when, std::function<void()> action) override;

  /// Park a lost remainder for host-driven re-dispatch (the default
  /// onNodeDown recovery path; see ISchedulerHost::deferLost).
  void deferLost(Subjob sj) override;

  /// Scripted failure injection: crash the machine hosting `node` now (all
  /// its CPU slots go down, active runs are lost, the cache is wiped per
  /// config().failures.loseCacheOnFailure). No automatic repair is
  /// scheduled — pair with repairNode via at(). No-op if already down.
  void failNode(NodeId node);
  /// Scripted repair of the machine hosting `node`. No-op if already up.
  void repairNode(NodeId node);

  /// Attribute a scheduling ("period") delay to a job; Fig 5/6 subtract it
  /// from the reported waiting time.
  void noteSchedulingDelay(JobId id, Duration delay) override;

  /// Cost feedback folding in current network contention (probes the flow
  /// network without perturbing it); falls back to the static cost model
  /// when the network model is disabled.
  [[nodiscard]] double estimatedSecPerEvent(NodeId node, NodeId remoteFrom,
                                            DataSource src) const override;

  /// Bulk-copy rate folding in current network contention (probes the flow
  /// network); falls back to the static link capacities when disabled.
  [[nodiscard]] double estimatedTransferBytesPerSec(NodeId dst, NodeId src) const override;

  /// Per-link utilization and flow counters up to now() (enabled == false
  /// when the network model is off).
  [[nodiscard]] NetworkReport networkReport() const { return net_.report(now_); }

  /// Edge-switch topology truth from the flow network (trivially true when
  /// the model is disabled).
  [[nodiscard]] bool sameSwitch(NodeId a, NodeId b) const override;

  /// The flow-level network model (inert object when disabled). Exposed for
  /// validation and diagnostics — mutate it only through the engine.
  [[nodiscard]] const FlowNetwork& flowNetwork() const { return net_; }

  /// Snapshot of one in-flight cache-filling copy: a §4.2 replication copy
  /// or a prefetch warming transfer (srcNode == kNoNode: from tertiary).
  struct TransferView {
    EventRange range;
    NodeId srcNode = kNoNode;
    NodeId dstNode = kNoNode;
    JobId job = kNoJob;
    FlowKind kind = FlowKind::Replication;
  };
  /// All in-flight cache-filling copies (validation, diagnostics).
  [[nodiscard]] std::vector<TransferView> activeTransfers() const;

  [[nodiscard]] MetricsCollector& metrics() { return metrics_; }

  /// Attach an observer for scheduling events (nullptr detaches). The sink
  /// must outlive the engine and must not call back into it.
  void setEventSink(IEventSink* sink) { sink_ = sink; }

  /// Planning-state epoch for planAccess memoization (see ISchedulerHost).
  /// Advanced by every mutation that can change plan results: span
  /// boundaries, cache effects, flow open/close/reconcile, transfers, and
  /// machine failure/repair. Returns 0 (memo off) when disabled.
  [[nodiscard]] std::uint64_t planEpoch() const override {
    return planMemoEnabled_ ? stateEpoch_ : 0;
  }
  /// Enable/disable the planAccess memo (on by default; memoized results
  /// are bit-identical to re-enumeration — the switch exists for
  /// differential tests and overhead measurement).
  void setPlanMemoization(bool on) { planMemoEnabled_ = on; }

 private:
  struct JobState {
    Job job;
    IntervalSet remaining;
    bool completed = false;
  };

  struct ActiveRun {
    Subjob subjob;
    AccessPlan plan;
    EventIndex cursor = 0;  ///< next unprocessed event
    SimTime runStart = 0.0;
    // Current span:
    EventRange span;
    DataSource spanSource = DataSource::Tertiary;
    double spanRate = 0.0;      ///< seconds per event
    double spanLatency = 0.0;   ///< fixed lead time before the first event
    SimTime spanStart = 0.0;
    EventId spanEventId = 0;
    bool pinnedLocal = false;
    bool pinnedRemote = false;
    bool countsTertiaryStream = false;
    bool justCompletedJob = false;
    // Network-model state (flow == kNoFlow when the span uses no network).
    FlowId flow = kNoFlow;
    double netDoneEvents = 0.0;  ///< events completed before the last rate change
    SimTime netMark = 0.0;       ///< when the current spanRate took effect
  };

  /// An in-flight cache-filling copy: a §4.2 replication copy (network
  /// model only; with the model disabled replication stays instantaneous,
  /// preserving bit-identity) or a prefetch warming transfer (which also
  /// runs with the model off, at the static device rate, flow == kNoFlow).
  struct Transfer {
    EventRange range;
    NodeId dstNode = kNoNode;
    NodeId srcNode = kNoNode;  ///< kNoNode: streaming from tertiary storage
    JobId job = kNoJob;
    FlowKind kind = FlowKind::Replication;
    FlowId flow = kNoFlow;
    double bytesLeft = 0.0;
    SimTime mark = 0.0;  ///< when rateBytesPerSec took effect
    double rateBytesPerSec = 0.0;
    EventId event = 0;
  };

  void scheduleNextArrival();
  void handleArrival(const Job& job);
  void beginNextSpan(NodeId node);
  void onSpanComplete(NodeId node);
  /// Apply progress `done` (a prefix of the current span): bookkeeping,
  /// metrics, cache effects, unpinning. Sets run.justCompletedJob.
  void applySpanEffects(NodeId node, ActiveRun& run, EventRange done);
  void finishRun(NodeId node);
  [[nodiscard]] bool shouldStop();

  // --- failure model ------------------------------------------------------
  [[nodiscard]] int machineOf(NodeId node) const { return node / cfg_.cpusPerNode; }
  /// Crash `machine`: kill active runs (RunLost), wipe the cache, notify the
  /// policy (onNodeDown per slot), drain parked work onto surviving nodes.
  void failMachine(int machine);
  /// Repair `machine` and notify the policy (onNodeUp per slot).
  void repairMachine(int machine);
  /// Kill the active run on `node`: discard the in-flight span, cancel its
  /// event, free the slot. Returns the Lost report for onNodeDown.
  RunReport killRun(NodeId node);
  /// Start parked lost work on idle up nodes (first-fit), trimming parts
  /// completed or re-dispatched in the meantime.
  void drainDeferred();
  /// Stochastic MTBF/MTTR chain (one per machine when failures are enabled).
  void stochasticFail(int machine);
  void stochasticRepair(int machine);
  /// Arrivals exhausted and every arrived job completed: failure events
  /// stop rescheduling so the simulation can terminate.
  [[nodiscard]] bool allWorkDone() const;
  /// Cancel all pending stochastic failure/repair events (run loop calls
  /// this once all work is done, so idle failure churn never inflates the
  /// simulated end time).
  void cancelFailureChain();
  /// Extra lead time for a tertiary span starting at `t`: time until the
  /// end of the outage window(s) covering `t`, walking chained windows.
  [[nodiscard]] double tertiaryOutageDelay(SimTime t) const;

  JobState& state(JobId id);
  [[nodiscard]] const JobState& state(JobId id) const;

  /// Seconds/event for a new span from `src` running on `node`, accounting
  /// for tertiary bandwidth contention and the node's CPU speed factor.
  [[nodiscard]] double spanRateFor(NodeId node, DataSource src) const;

  // --- network model ------------------------------------------------------
  /// Seconds/event on `node` for a span whose transfer runs at `flowBps`
  /// (the span's current network-flow allocation).
  [[nodiscard]] double networkSpanRate(NodeId node, double flowBps) const;
  /// Demand cap (bytes/s) a new flow carrying `src` data would request: the
  /// serving device's rate, before any link sharing.
  [[nodiscard]] double flowDemandCap(DataSource src) const;
  /// Events of the current span completed by time `t`. With the network
  /// model off this is the exact legacy formula (bit-identity).
  [[nodiscard]] std::uint64_t spanEventsDoneAt(const ActiveRun& run, SimTime t) const;
  /// After any flow open/close: fold each affected span's/transfer's
  /// progress at its old rate and reschedule its completion at the new one.
  void reconcileNetworkFlows();
  /// Start cache-filling copies of `r` towards `dstNode` — from `srcNode`'s
  /// cache, or from tertiary when srcNode == kNoNode — deduplicating
  /// against copies already in flight to that machine.
  void startTransfer(NodeId dstNode, NodeId srcNode, JobId job, EventRange r, FlowKind kind);
  /// A copy delivered: insert into the destination cache.
  void finishTransfer(std::uint64_t transferId);
  /// Abort all in-flight copies touching a failed machine.
  void abortTransfers(int machine);
  /// A machine crashed: runs on OTHER machines that were reading remotely
  /// from its cache fold their progress and re-plan their current span
  /// without the dead source (their future spans fall back to
  /// local/tertiary). Keeps remote flows off down machines and releases
  /// remote pins before the dead cache is wiped.
  void retargetRemoteReaders(int machine);

  void emit(SimEventKind kind, JobId job, NodeId node, EventRange range = {}) const;

  SimConfig cfg_;
  std::unique_ptr<JobSource> source_;
  std::unique_ptr<ISchedulerPolicy> policy_;
  MetricsCollector& metrics_;
  Cluster cluster_;
  EventQueue queue_;
  SimTime now_ = 0.0;

  std::vector<std::optional<ActiveRun>> runs_;  // one slot per node
  std::vector<JobState> jobs_;                  // dense by JobId
  /// Remote-access counters per (serving) node, for replication (§4.2).
  std::vector<IntervalCounter> remoteAccess_;

  StopCondition stop_;
  bool stopping_ = false;
  bool arrivalsExhausted_ = false;
  /// Failure model state. The RNG exists unconditionally but draws nothing
  /// when failures are disabled, so zero-failure runs stay bit-identical.
  Rng failureRng_;
  std::deque<Subjob> lostWork_;  ///< parked remainders of killed runs
  /// Pending stochastic failure/repair event per machine (for cancellation
  /// once all work is done); kNoFailureEvent when none.
  std::vector<EventId> failureEvents_;
  bool failureChainActive_ = false;
  static constexpr EventId kNoFailureEvent = static_cast<EventId>(-1);
  /// Concurrent spans currently streaming from tertiary storage (for the
  /// optional aggregate bandwidth cap).
  int activeTertiaryStreams_ = 0;
  /// Flow-level network model (inert when cfg_.network.enabled is false).
  FlowNetwork net_;
  /// In-flight replication copies, keyed by a dense transfer id.
  std::map<std::uint64_t, Transfer> transfers_;
  std::uint64_t nextTransferId_ = 1;
  IEventSink* sink_ = nullptr;
  /// Monotone planning-state counter backing planEpoch(). Starts at 1 so an
  /// enabled memo is distinguishable from the "no tracking" epoch 0.
  std::uint64_t stateEpoch_ = 1;
  bool planMemoEnabled_ = true;
};

}  // namespace ppsched
