#include "core/experiment.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "core/engine.h"
#include "shard/coordinator.h"
#include "sim/random.h"
#include "workload/in2p3.h"
#include "workload/trace.h"

namespace ppsched {

std::unique_ptr<JobSource> openTraceSource(const std::string& path, const SimConfig& cfg,
                                           const std::vector<std::string>& interactiveGroups) {
  // Peek at the first content line: IN2P3 logs lead with a header naming
  // their columns (letters), ppsched traces with a numeric CSV row.
  bool in2p3 = false;
  {
    std::ifstream probe(path);
    if (!probe) throw std::runtime_error("trace: cannot open " + path);
    std::string line;
    while (std::getline(probe, line)) {
      std::size_t i = 0;
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      if (i >= line.size() || line[i] == '#' || line[i] == '\r') continue;
      in2p3 = std::isalpha(static_cast<unsigned char>(line[i])) != 0;
      break;
    }
  }
  if (in2p3) {
    In2p3MapConfig map;
    map.totalEvents = cfg.totalEvents();
    map.secPerEventRef = cfg.cost.uncachedSecPerEvent();
    map.minJobEvents = cfg.minSubjobEvents;
    map.interactiveGroups = interactiveGroups;
    return std::make_unique<In2p3TraceReader>(path, map);
  }
  return std::make_unique<StreamingTraceSource>(path, /*renumber=*/true);
}

RunResult runExperiment(const ExperimentSpec& spec) {
  SimConfig cfg = spec.sim;
  cfg.workload.jobsPerHour = spec.jobsPerHour;
  cfg.finalize();

  std::unique_ptr<JobSource> source;
  if (spec.sourceFactory) {
    source = spec.sourceFactory();
    if (!source) throw std::invalid_argument("sourceFactory returned null");
  } else if (!spec.tracePath.empty()) {
    source = openTraceSource(spec.tracePath, cfg, spec.policyParams.qos.interactiveGroups);
  } else {
    source = std::make_unique<WorkloadGenerator>(cfg.workload, spec.seed);
  }
  std::unique_ptr<ISchedulerPolicy> policy;
  if (cfg.shards.enabled()) {
    policy = std::make_unique<ShardedCoordinator>(
        cfg.shards, [name = spec.policyName, params = spec.policyParams] {
          return makePolicy(name, params);
        });
  } else {
    policy = makePolicy(spec.policyName, spec.policyParams);
  }

  WarmupConfig warmup;
  warmup.jobs = spec.warmupJobs;
  MetricsCollector metrics(cfg.cost, warmup);
  metrics.setQosWeights(spec.policyParams.qos.bulkWeight,
                        spec.policyParams.qos.interactiveWeight);

  Engine engine(cfg, std::move(source), std::move(policy), metrics);

  if (spec.prewarmCaches && engine.policy().usesCaching()) {
    // Seed every cache with mean-job-sized segments drawn from the same
    // start-point distribution as the workload, so the pre-warmed contents
    // resemble the steady state. Node i uses an independent derived stream.
    WorkloadParams sampler = cfg.workload;
    for (NodeId n = 0; n < engine.numNodes(); ++n) {
      WorkloadGenerator gen(sampler,
                            deriveSeed(spec.seed, SeedDomain::Prewarm, static_cast<std::uint64_t>(n)));
      LruExtentCache& cache = engine.cluster().node(n).cache();
      // Bounded attempts: overlapping draws may stop making progress.
      for (int attempt = 0; attempt < 256 && cache.freeSpace() > 0; ++attempt) {
        const std::uint64_t len =
            std::min<std::uint64_t>(gen.drawJobEvents(), cache.freeSpace());
        const EventIndex start = gen.drawStartPoint(len);
        cache.insert({start, start + len}, 0.0);
      }
    }
  }

  StopCondition stop;
  stop.completedJobs = spec.warmupJobs + spec.measuredJobs;
  stop.maxJobsInSystem = spec.maxJobsInSystem;
  // Safety net: several times the expected duration of the whole run.
  const double expectedHours =
      static_cast<double>(stop.completedJobs) / std::max(0.01, spec.jobsPerHour);
  stop.simTimeLimit = 10.0 * expectedHours * units::hour + 30 * units::day;
  engine.run(stop);

  RunResult result = metrics.finalize(engine.now(), spec.withHistogram);
  result.network = engine.networkReport();
  if (auto* coord = dynamic_cast<ShardedCoordinator*>(&engine.policy())) {
    result.shards = coord->report();
  }
  return result;
}

std::vector<LoadPoint> loadSweep(const ExperimentSpec& base, std::span<const double> loads,
                                 ThreadPool* pool) {
  std::vector<LoadPoint> points(loads.size());
  auto runPoint = [&](std::size_t i) {
    ExperimentSpec spec = base;
    spec.jobsPerHour = loads[i];
    spec.seed = deriveSeed(base.seed, SeedDomain::Sweep, i);
    points[i].jobsPerHour = loads[i];
    points[i].result = runExperiment(spec);
  };
  if (pool != nullptr) {
    pool->parallelFor(loads.size(), runPoint);
  } else {
    for (std::size_t i = 0; i < loads.size(); ++i) runPoint(i);
  }
  return points;
}

ReplicatedResult runReplicated(const ExperimentSpec& spec, std::size_t replicas,
                               ThreadPool* pool) {
  if (replicas == 0) throw std::invalid_argument("need at least one replica");
  ReplicatedResult out;
  out.runs.resize(replicas);
  auto runOne = [&](std::size_t i) {
    ExperimentSpec s = spec;
    s.seed = deriveSeed(spec.seed, SeedDomain::Replica, i);
    out.runs[i] = runExperiment(s);
  };
  if (pool != nullptr) {
    pool->parallelFor(replicas, runOne);
  } else {
    for (std::size_t i = 0; i < replicas; ++i) runOne(i);
  }

  StreamingStats speedup;
  StreamingStats waitHours;
  for (const RunResult& r : out.runs) {
    speedup.add(r.avgSpeedup);
    waitHours.add(units::toHours(r.avgWait));
    if (r.overloaded) ++out.overloadedRuns;
  }
  const double sqrtN = std::sqrt(static_cast<double>(replicas));
  out.meanSpeedup = speedup.mean();
  out.speedupStdErr = speedup.stddev() / sqrtN;
  out.meanWaitHours = waitHours.mean();
  out.waitHoursStdErr = waitHours.stddev() / sqrtN;
  out.overloaded = 2 * out.overloadedRuns > replicas;
  return out;
}

double findMaxSustainableLoad(const ExperimentSpec& base, double lo, double hi,
                              double tolerance) {
  if (!(lo > 0.0) || !(hi > lo)) throw std::invalid_argument("need 0 < lo < hi");
  auto overloadedAt = [&](double load) {
    ExperimentSpec spec = base;
    spec.jobsPerHour = load;
    return runExperiment(spec).overloaded;
  };
  if (overloadedAt(lo)) throw std::invalid_argument("lo is already overloaded");
  if (!overloadedAt(hi)) return hi;  // sustainable across the whole range
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    (overloadedAt(mid) ? hi : lo) = mid;
  }
  return lo;
}

}  // namespace ppsched
