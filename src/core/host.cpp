// Default placement implementations shared by both hosts (simulator and
// wall-clock runtime). See DESIGN.md "Topology-aware placement".
#include "core/host.h"

namespace ppsched {

bool ISchedulerHost::sameSwitch(NodeId a, NodeId b) const {
  const NetworkConfig& net = config().network;
  if (!net.enabled || net.nodesPerSwitch <= 0) return true;
  const int cpus = std::max(1, config().cpusPerNode);
  return (a / cpus) / net.nodesPerSwitch == (b / cpus) / net.nodesPerSwitch;
}

std::vector<PlacementCandidate> ISchedulerHost::rankPlacements(NodeId dst, EventRange range) {
  std::vector<PlacementCandidate> out;
  Cluster& cl = cluster();
  const Node& dstNode = cl.node(dst);
  const bool netEnabled = config().network.enabled;
  for (NodeId n : cl.nodesCaching(range)) {
    if (n == dst) continue;
    const Node& src = cl.node(n);
    if (src.sharesCacheWith(dstNode)) continue;  // local content, not a remote read
    if (!src.isUp()) continue;
    PlacementCandidate c;
    c.source = n;
    c.cachedEvents = cl.cachedOn(n, range).size();
    c.secPerEvent = estimatedSecPerEvent(dst, n, DataSource::RemoteCache);
    c.sameSwitch = sameSwitch(dst, n);
    out.push_back(c);
  }
  if (netEnabled) {
    std::stable_sort(out.begin(), out.end(),
                     [](const PlacementCandidate& a, const PlacementCandidate& b) {
                       if (a.secPerEvent != b.secPerEvent) return a.secPerEvent < b.secPerEvent;
                       if (a.sameSwitch != b.sameSwitch) return a.sameSwitch;
                       if (a.cachedEvents != b.cachedEvents) return a.cachedEvents > b.cachedEvents;
                       return a.source < b.source;
                     });
  } else {
    // Cache-content order: exactly Cluster::bestCacheNode (most cached,
    // ties lowest id), so policies built on this API reproduce the paper
    // heuristic bit-for-bit when the network model is off.
    std::stable_sort(out.begin(), out.end(),
                     [](const PlacementCandidate& a, const PlacementCandidate& b) {
                       if (a.cachedEvents != b.cachedEvents) return a.cachedEvents > b.cachedEvents;
                       return a.source < b.source;
                     });
  }
  return out;
}

}  // namespace ppsched
