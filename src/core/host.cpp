// Default placement and access-planning implementations shared by both
// hosts (simulator and wall-clock runtime). See DESIGN.md "Topology-aware
// placement" and "Access planning".
#include "core/host.h"

namespace ppsched {
namespace {

/// Per-event cost of an uncontended remote read into `node` over the chosen
/// path. A cross-switch read rides the uplink even on an idle network:
/// charging it keeps the replica-congestion gate a measure of sharing, not
/// of topology — the topology preference already happened in the ranking.
double uncontendedRemoteSecPerEvent(const SimConfig& cfg, NodeId node, bool crossSwitch) {
  double cpu = cfg.cost.cpuSecPerEvent;
  if (!cfg.nodeSpeedFactors.empty()) {
    cpu /= cfg.nodeSpeedFactors[static_cast<std::size_t>(node)];
  }
  double bps = std::min(cfg.cost.remoteBytesPerSec, cfg.network.nicBytesPerSec);
  if (crossSwitch && cfg.network.uplinkBytesPerSec > 0.0) {
    bps = std::min(bps, cfg.network.uplinkBytesPerSec);
  }
  const double transfer = cfg.cost.bytesPerEvent / bps;
  return cfg.cost.pipelined ? std::max(transfer, cpu) : transfer + cpu;
}

}  // namespace

bool ISchedulerHost::sameSwitch(NodeId a, NodeId b) const {
  const NetworkConfig& net = config().network;
  if (!net.enabled || net.nodesPerSwitch <= 0) return true;
  const int cpus = std::max(1, config().cpusPerNode);
  return (a / cpus) / net.nodesPerSwitch == (b / cpus) / net.nodesPerSwitch;
}

std::vector<PlacementCandidate> ISchedulerHost::rankPlacements(NodeId dst, EventRange range) {
  std::vector<PlacementCandidate> out;
  Cluster& cl = cluster();
  const Node& dstNode = cl.node(dst);
  const bool netEnabled = config().network.enabled;
  for (NodeId n : cl.nodesCaching(range)) {
    if (n == dst) continue;
    const Node& src = cl.node(n);
    if (src.sharesCacheWith(dstNode)) continue;  // local content, not a remote read
    if (!src.isUp()) continue;
    PlacementCandidate c;
    c.source = n;
    c.cachedEvents = cl.cachedOn(n, range).size();
    c.secPerEvent = estimatedSecPerEvent(dst, n, DataSource::RemoteCache);
    c.sameSwitch = sameSwitch(dst, n);
    out.push_back(c);
  }
  if (netEnabled) {
    std::stable_sort(out.begin(), out.end(),
                     [](const PlacementCandidate& a, const PlacementCandidate& b) {
                       if (a.secPerEvent != b.secPerEvent) return a.secPerEvent < b.secPerEvent;
                       if (a.sameSwitch != b.sameSwitch) return a.sameSwitch;
                       if (a.cachedEvents != b.cachedEvents) return a.cachedEvents > b.cachedEvents;
                       return a.source < b.source;
                     });
  } else {
    // Cache-content order: exactly Cluster::bestCacheNode (most cached,
    // ties lowest id), so policies built on this API reproduce the paper
    // heuristic bit-for-bit when the network model is off.
    std::stable_sort(out.begin(), out.end(),
                     [](const PlacementCandidate& a, const PlacementCandidate& b) {
                       if (a.cachedEvents != b.cachedEvents) return a.cachedEvents > b.cachedEvents;
                       return a.source < b.source;
                     });
  }
  return out;
}

double ISchedulerHost::estimatedTransferBytesPerSec(NodeId dst, NodeId src) const {
  const SimConfig& cfg = config();
  double bps = (src == kNoNode) ? cfg.cost.tertiaryBytesPerSec : cfg.cost.remoteBytesPerSec;
  if (cfg.network.enabled) {
    if (cfg.network.nicBytesPerSec > 0.0) bps = std::min(bps, cfg.network.nicBytesPerSec);
    if (src == kNoNode) {
      if (cfg.network.tertiaryIngressBytesPerSec > 0.0) {
        bps = std::min(bps, cfg.network.tertiaryIngressBytesPerSec);
      }
      if (cfg.tertiaryAggregateBytesPerSec > 0.0) {
        bps = std::min(bps, cfg.tertiaryAggregateBytesPerSec);
      }
    } else if (!sameSwitch(dst, src) && cfg.network.uplinkBytesPerSec > 0.0) {
      bps = std::min(bps, cfg.network.uplinkBytesPerSec);
    }
  }
  return bps;
}

std::size_t ISchedulerHost::PlanMemoHash::operator()(const PlanMemoKey& k) const {
  // FNV-style combine over the key fields; collisions only cost a compare.
  std::size_t h = std::hash<std::int64_t>{}(k.dst);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<std::uint64_t>{}(k.begin));
  mix(std::hash<std::uint64_t>{}(k.end));
  mix(std::hash<int>{}(k.intent * 4 + k.replicationThreshold * 2 +
                       (k.topologyAware ? 1 : 0)));
  mix(std::hash<double>{}(k.replicaCongestionFactor));
  mix(std::hash<double>{}(k.deadline));
  return h;
}

std::vector<AccessPlan> ISchedulerHost::planAccess(NodeId dst, EventRange range,
                                                   AccessGoal goal) {
  const std::uint64_t epoch = planEpoch();
  if (epoch == 0) return enumerateAccessPlans(dst, range, goal);
  if (epoch != planMemoEpoch_) {
    planMemo_.clear();
    planMemoEpoch_ = epoch;
  }
  const PlanMemoKey key{dst,
                        range.begin,
                        range.end,
                        static_cast<int>(goal.intent),
                        goal.replicationThreshold,
                        goal.replicaCongestionFactor,
                        goal.topologyAware,
                        goal.deadline};
  ++planMemoStats_.lookups;
  const auto it = planMemo_.find(key);
  if (it != planMemo_.end()) {
    ++planMemoStats_.hits;
    return it->second;
  }
  std::vector<AccessPlan> plans = enumerateAccessPlans(dst, range, goal);
  planMemo_.emplace(key, plans);
  return plans;
}

std::vector<AccessPlan> ISchedulerHost::enumerateAccessPlans(NodeId dst, EventRange range,
                                                             const AccessGoal& goal) {
  std::vector<AccessPlan> plans;
  const SimConfig& cfg = config();
  const bool netEnabled = cfg.network.enabled;

  if (goal.intent == AccessGoal::Intent::Prefetch) {
    // Cache-warming: rank every viable source by pure transfer cost — no
    // CPU folded, the bytes land on disk without being processed.
    for (const PlacementCandidate& c : rankPlacements(dst, range)) {
      AccessPlan p;
      p.source = DataSource::RemoteCache;
      p.servingNode = c.source;
      p.cachedEvents = c.cachedEvents;
      p.secPerEvent = cfg.cost.bytesPerEvent / estimatedTransferBytesPerSec(dst, c.source);
      p.prefetchDeadline = goal.deadline;
      plans.push_back(p);
    }
    AccessPlan tertiary;
    tertiary.source = DataSource::Tertiary;
    tertiary.secPerEvent = cfg.cost.bytesPerEvent / estimatedTransferBytesPerSec(dst, kNoNode);
    tertiary.prefetchDeadline = goal.deadline;
    plans.push_back(tertiary);
    std::stable_sort(plans.begin(), plans.end(), [](const AccessPlan& a, const AccessPlan& b) {
      return a.secPerEvent < b.secPerEvent;
    });
    return plans;
  }

  // Dispatch intent: remote-read plans gated against tertiary streaming,
  // then the no-remote fallback. front() reproduces the legacy replication
  // heuristic exactly (see host.h).
  const double tertiarySec = estimatedSecPerEvent(dst, kNoNode, DataSource::Tertiary);
  if (netEnabled && goal.topologyAware) {
    for (const PlacementCandidate& c : rankPlacements(dst, range)) {
      // Even the best source can lose to tertiary streaming when every path
      // in is congested; reading remotely then only adds traffic.
      if (c.secPerEvent >= tertiarySec) continue;
      AccessPlan p;
      p.source = DataSource::RemoteCache;
      p.servingNode = c.source;
      p.replicationThreshold = goal.replicationThreshold;
      p.secPerEvent = c.secPerEvent;
      p.cachedEvents = c.cachedEvents;
      // Congested path: keep the (still cheapest) remote read but withhold
      // the replica copy — the copy would ride the same loaded links and
      // amplify the congestion that made the path expensive.
      if (goal.replicaCongestionFactor > 0.0 &&
          c.secPerEvent > goal.replicaCongestionFactor *
                              uncontendedRemoteSecPerEvent(cfg, dst, !c.sameSwitch)) {
        p.replicationThreshold = 0;
      }
      plans.push_back(p);
    }
  } else {
    // Network model off (or topology-awareness disabled): the paper's
    // cache-content heuristic, bit-identical to the pre-plan policy. Note
    // bestCacheNode considers dst itself — when dst holds the most content
    // there is no remote candidate (its data is already local).
    const NodeId best = cluster().bestCacheNode(range);
    if (best != kNoNode && best != dst) {
      const double remoteSec = estimatedSecPerEvent(dst, best, DataSource::RemoteCache);
      // The tertiary gate is inert when the model is disabled — the static
      // cost model always prices remote reads below tertiary streaming.
      if (!netEnabled || remoteSec < tertiarySec) {
        AccessPlan p;
        p.source = DataSource::RemoteCache;
        p.servingNode = best;
        p.replicationThreshold = goal.replicationThreshold;
        p.secPerEvent = remoteSec;
        p.cachedEvents = cluster().cachedOn(best, range).size();
        plans.push_back(p);
      }
    }
  }
  AccessPlan fallback;  // stream uncached data from tertiary, no remote read
  fallback.source = DataSource::Tertiary;
  fallback.secPerEvent = tertiarySec;
  plans.push_back(fallback);
  return plans;
}

}  // namespace ppsched
