#include "core/event_log.h"

#include <algorithm>
#include <ostream>

namespace ppsched {

std::string_view toString(SimEventKind kind) {
  switch (kind) {
    case SimEventKind::JobArrival:
      return "arrival";
    case SimEventKind::RunStart:
      return "run_start";
    case SimEventKind::RunEnd:
      return "run_end";
    case SimEventKind::Preempt:
      return "preempt";
    case SimEventKind::JobComplete:
      return "job_complete";
    case SimEventKind::TimerFired:
      return "timer";
    case SimEventKind::NodeDown:
      return "node_down";
    case SimEventKind::NodeUp:
      return "node_up";
    case SimEventKind::RunLost:
      return "run_lost";
    case SimEventKind::FlowOpen:
      return "flow_open";
    case SimEventKind::FlowClose:
      return "flow_close";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const SimEvent& e) {
  os << e.time << ' ' << toString(e.kind);
  if (e.job != kNoJob) os << " job=" << e.job;
  if (e.node != kNoNode) os << " node=" << e.node;
  if (!e.range.empty()) os << ' ' << e.range;
  return os;
}

std::vector<SimEvent> EventLog::ofKind(SimEventKind kind) const {
  std::vector<SimEvent> out;
  std::copy_if(events_.begin(), events_.end(), std::back_inserter(out),
               [kind](const SimEvent& e) { return e.kind == kind; });
  return out;
}

std::vector<SimEvent> EventLog::ofJob(JobId job) const {
  std::vector<SimEvent> out;
  std::copy_if(events_.begin(), events_.end(), std::back_inserter(out),
               [job](const SimEvent& e) { return e.job == job; });
  return out;
}

std::vector<SimEvent> EventLog::onNode(NodeId node) const {
  std::vector<SimEvent> out;
  std::copy_if(events_.begin(), events_.end(), std::back_inserter(out),
               [node](const SimEvent& e) { return e.node == node; });
  return out;
}

std::size_t EventLog::count(SimEventKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const SimEvent& e) { return e.kind == kind; }));
}

void EventLog::writeCsv(std::ostream& os) const {
  os << "time,kind,job,node,begin,end\n";
  for (const SimEvent& e : events_) {
    os << e.time << ',' << toString(e.kind) << ',';
    if (e.job != kNoJob) os << e.job;
    os << ',';
    if (e.node != kNoNode) os << e.node;
    os << ',' << e.range.begin << ',' << e.range.end << '\n';
  }
}

}  // namespace ppsched
