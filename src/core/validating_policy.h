// Invariant-checking policy decorator.
//
// Wraps any ISchedulerPolicy and, after every callback, verifies global
// engine/cluster invariants:
//   - cache accounting: used <= capacity, contents() size == used, on every
//     node;
//   - no two nodes process overlapping ranges of the same job;
//   - every running subjob's range is remaining work of its job;
//   - completed jobs have no remaining work and are not running anywhere;
//   - down nodes never run anything and are never reported idle.
//
// When the host is the simulator with the network model enabled, every
// sweep additionally verifies the flow network:
//   - no open flow references a down machine (links of a crashed machine
//     are closed, so no flow may be routed over them);
//   - per-link allocation never exceeds capacity, and each link's
//     utilization integral never exceeds capacity × elapsed time;
//   - in-flight replica copies land in exactly one cache: each copy has a
//     single destination machine and copies to one machine are pairwise
//     disjoint (no extent is delivered twice).
//
// Violations throw std::logic_error with a description. Used by the
// property tests to fuzz every policy, and available to downstream policy
// authors as a development harness:
//
//   engine uses makePolicy(...) wrapped via:
//     std::make_unique<ValidatingPolicy>(makePolicy("my_policy"))
#pragma once

#include <memory>

#include "core/host.h"
#include "core/policy.h"

namespace ppsched {

class ValidatingPolicy final : public ISchedulerPolicy {
 public:
  explicit ValidatingPolicy(std::unique_ptr<ISchedulerPolicy> inner);

  [[nodiscard]] std::string name() const override { return inner_->name() + "+validate"; }
  [[nodiscard]] bool usesCaching() const override { return inner_->usesCaching(); }

  void bind(ISchedulerHost& host) override;
  void onJobArrival(const Job& job) override;
  void onRunFinished(NodeId node, const RunReport& report) override;
  void onTimer(TimerId timer) override;
  void onNodeDown(NodeId node, const RunReport* lost) override;
  void onNodeUp(NodeId node) override;

  /// Number of invariant sweeps performed (for tests).
  [[nodiscard]] std::uint64_t checksPerformed() const { return checks_; }

 private:
  void checkInvariants();

  std::unique_ptr<ISchedulerPolicy> inner_;
  std::uint64_t checks_ = 0;
};

}  // namespace ppsched
