#include "core/timeline.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>

namespace ppsched {

std::vector<BusyInterval> busyIntervals(const EventLog& log, int numNodes, SimTime endTime) {
  std::vector<BusyInterval> out;
  // Open run per node: (job, start time).
  std::map<NodeId, std::pair<JobId, SimTime>> open;
  for (const SimEvent& e : log.events()) {
    switch (e.kind) {
      case SimEventKind::RunStart: {
        if (e.node < 0 || e.node >= numNodes) throw std::runtime_error("RunStart on bad node");
        if (open.contains(e.node)) throw std::runtime_error("RunStart on a busy node");
        open[e.node] = {e.job, e.time};
        break;
      }
      case SimEventKind::RunEnd:
      case SimEventKind::Preempt:
      case SimEventKind::RunLost: {
        auto it = open.find(e.node);
        if (it == open.end()) throw std::runtime_error("run end on an idle node");
        out.push_back({e.node, it->second.first, it->second.second, e.time});
        open.erase(it);
        break;
      }
      default:
        break;
    }
  }
  for (const auto& [node, run] : open) {
    out.push_back({node, run.first, run.second, endTime});
  }
  std::sort(out.begin(), out.end(), [](const BusyInterval& a, const BusyInterval& b) {
    if (a.node != b.node) return a.node < b.node;
    return a.begin < b.begin;
  });
  return out;
}

std::vector<BusyInterval> downIntervals(const EventLog& log, int numNodes, SimTime endTime) {
  std::vector<BusyInterval> out;
  std::map<NodeId, SimTime> downSince;
  for (const SimEvent& e : log.events()) {
    switch (e.kind) {
      case SimEventKind::NodeDown: {
        if (e.node < 0 || e.node >= numNodes) throw std::runtime_error("NodeDown on bad node");
        downSince.emplace(e.node, e.time);  // double NodeDown: keep the first
        break;
      }
      case SimEventKind::NodeUp: {
        auto it = downSince.find(e.node);
        if (it == downSince.end()) throw std::runtime_error("NodeUp on an up node");
        out.push_back({e.node, kNoJob, it->second, e.time});
        downSince.erase(it);
        break;
      }
      default:
        break;
    }
  }
  for (const auto& [node, since] : downSince) {
    out.push_back({node, kNoJob, since, endTime});
  }
  std::sort(out.begin(), out.end(), [](const BusyInterval& a, const BusyInterval& b) {
    if (a.node != b.node) return a.node < b.node;
    return a.begin < b.begin;
  });
  return out;
}

std::vector<BusyInterval> flowIntervals(const EventLog& log, int numNodes, SimTime endTime) {
  std::vector<BusyInterval> out;
  // Per node: open-flow depth and when the depth last rose from zero.
  std::map<NodeId, std::pair<int, SimTime>> open;
  for (const SimEvent& e : log.events()) {
    switch (e.kind) {
      case SimEventKind::FlowOpen: {
        if (e.node < 0 || e.node >= numNodes) throw std::runtime_error("FlowOpen on bad node");
        auto [it, inserted] = open.try_emplace(e.node, 0, e.time);
        if (it->second.first == 0) it->second.second = e.time;
        ++it->second.first;
        break;
      }
      case SimEventKind::FlowClose: {
        auto it = open.find(e.node);
        if (it == open.end() || it->second.first == 0) {
          throw std::runtime_error("FlowClose without an open flow");
        }
        if (--it->second.first == 0) {
          out.push_back({e.node, kNoJob, it->second.second, e.time});
        }
        break;
      }
      default:
        break;
    }
  }
  for (const auto& [node, state] : open) {
    if (state.first > 0) out.push_back({node, kNoJob, state.second, endTime});
  }
  std::sort(out.begin(), out.end(), [](const BusyInterval& a, const BusyInterval& b) {
    if (a.node != b.node) return a.node < b.node;
    return a.begin < b.begin;
  });
  return out;
}

std::string renderTimeline(const EventLog& log, int numNodes, TimelineOptions options) {
  SimTime end = options.end;
  if (end <= 0.0) {
    for (const SimEvent& e : log.events()) end = std::max(end, e.time);
  }
  if (end <= options.begin) end = options.begin + 1.0;
  const int width = std::max(8, options.width);
  const double bucket = (end - options.begin) / width;
  const auto intervals = busyIntervals(log, numNodes, end);
  const auto down = downIntervals(log, numNodes, end);

  std::string result;
  if (options.header) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "t = %.0f .. %.0f s, %.0f s/char\n", options.begin, end,
                  bucket);
    result += buf;
  }
  for (NodeId n = 0; n < numNodes; ++n) {
    char label[32];
    std::snprintf(label, sizeof label, "node %-3d |", n);
    result += label;
    for (int b = 0; b < width; ++b) {
      const SimTime lo = options.begin + b * bucket;
      const SimTime hi = lo + bucket;
      // Dominant job in this bucket on this node.
      JobId best = kNoJob;
      double bestOverlap = 0.0;
      for (const BusyInterval& iv : intervals) {
        if (iv.node != n) continue;
        const double overlap = std::min(iv.end, hi) - std::max(iv.begin, lo);
        if (overlap > bestOverlap) {
          bestOverlap = overlap;
          best = iv.job;
        }
      }
      char c = best == kNoJob ? '.' : static_cast<char>('0' + best % 10);
      if (best == kNoJob) {
        // Otherwise-idle buckets overlapping a down window render as 'x'.
        for (const BusyInterval& iv : down) {
          if (iv.node != n) continue;
          if (std::min(iv.end, hi) - std::max(iv.begin, lo) > 0.0) {
            c = 'x';
            break;
          }
        }
      }
      result += c;
    }
    result += "|\n";
  }
  return result;
}

std::vector<double> nodeUtilization(const EventLog& log, int numNodes, SimTime begin,
                                    SimTime end) {
  std::vector<double> util(static_cast<std::size_t>(numNodes), 0.0);
  if (end <= begin) return util;
  for (const BusyInterval& iv : busyIntervals(log, numNodes, end)) {
    const double overlap = std::min(iv.end, end) - std::max(iv.begin, begin);
    if (overlap > 0.0) util[static_cast<std::size_t>(iv.node)] += overlap;
  }
  for (double& u : util) u /= (end - begin);
  return util;
}

}  // namespace ppsched
