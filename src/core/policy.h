// Scheduling policy plugin interface.
//
// The paper's scheduler "implements a plugin model, enabling new scheduling
// policies to be easily added" (§2.3). A policy owns all queueing decisions;
// the host (simulator engine or wall-clock runtime, see core/host.h) owns
// ground truth and drives the policy through the three callbacks below.
#pragma once

#include <cstdint>
#include <string>

#include "core/host.h"

namespace ppsched {

/// Why a run ended. Completed is the paper's only outcome; Lost is the
/// failure model's addition (the node died mid-run).
enum class RunEndReason {
  Completed,  ///< the run processed its whole subjob
  Lost,       ///< the node failed; unprocessed work is in `remainder`
};

/// Report handed to the policy when a run ends without the policy's own
/// doing (completion, or loss to a node failure).
struct RunReport {
  /// The subjob as it was started on the node.
  Subjob subjob;
  /// True when this run completed the last outstanding piece of its job.
  bool jobCompleted = false;
  /// Completed for onRunFinished; Lost for the report of onNodeDown.
  RunEndReason reason = RunEndReason::Completed;
  /// Lost runs only: the unprocessed part of `subjob` (progress rolls back
  /// to the last span boundary — the partial span in flight is discarded).
  /// Empty for completed runs.
  Subjob remainder;
};

class ISchedulerPolicy {
 public:
  virtual ~ISchedulerPolicy() = default;

  /// Human-readable policy name (also the registry key).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether node disks cache data read from tertiary storage. The farm and
  /// plain job-splitting policies of §3.1/§3.2 run cache-less.
  [[nodiscard]] virtual bool usesCaching() const { return true; }

  /// Called once before scheduling starts; `host` outlives the policy.
  virtual void bind(ISchedulerHost& host) { host_ = &host; }

  /// A new job entered the cluster.
  virtual void onJobArrival(const Job& job) = 0;

  /// A run finished on `node`; the node is now idle. (Preemptions initiated
  /// by the policy itself do NOT trigger this callback: preempt() returns
  /// the remainder synchronously.)
  virtual void onRunFinished(NodeId node, const RunReport& report) = 0;

  /// A timer scheduled via ISchedulerHost::scheduleTimer fired.
  virtual void onTimer(TimerId timer) { (void)timer; }

  /// The machine hosting `node` failed. Fired once per CPU slot of the
  /// machine. `lost` is the report of the run killed on this slot (reason ==
  /// Lost), or nullptr if the slot was idle. The node is already down: it
  /// rejects startRun and is absent from idleNodes().
  ///
  /// The default parks the lost remainder with the host (deferLost), which
  /// re-dispatches it onto the first idle up node after any later callback.
  /// Every policy therefore survives failures unmodified: internal
  /// run-counting stays balanced because the engine-restarted run flows
  /// through the regular onRunFinished path. Override to re-dispatch more
  /// cleverly (e.g. immediately, cache-affine).
  virtual void onNodeDown(NodeId node, const RunReport* lost) {
    (void)node;
    if (lost != nullptr && !lost->remainder.empty()) host().deferLost(lost->remainder);
  }

  /// The machine hosting `node` was repaired; the node is idle (and its
  /// cache typically empty). Fired once per CPU slot. Default: do nothing —
  /// parked work drains onto the node right after this callback, and idle
  /// policies re-engage it on the next arrival/completion.
  virtual void onNodeUp(NodeId node) { (void)node; }

 protected:
  ISchedulerHost& host() const { return *host_; }

 private:
  ISchedulerHost* host_ = nullptr;
};

}  // namespace ppsched
