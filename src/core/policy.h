// Scheduling policy plugin interface.
//
// The paper's scheduler "implements a plugin model, enabling new scheduling
// policies to be easily added" (§2.3). A policy owns all queueing decisions;
// the host (simulator engine or wall-clock runtime, see core/host.h) owns
// ground truth and drives the policy through the three callbacks below.
#pragma once

#include <cstdint>
#include <string>

#include "core/host.h"

namespace ppsched {

/// Report handed to the policy when a run finishes on its own.
struct RunReport {
  /// The subjob as it was started on the node.
  Subjob subjob;
  /// True when this run completed the last outstanding piece of its job.
  bool jobCompleted = false;
};

class ISchedulerPolicy {
 public:
  virtual ~ISchedulerPolicy() = default;

  /// Human-readable policy name (also the registry key).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether node disks cache data read from tertiary storage. The farm and
  /// plain job-splitting policies of §3.1/§3.2 run cache-less.
  [[nodiscard]] virtual bool usesCaching() const { return true; }

  /// Called once before scheduling starts; `host` outlives the policy.
  virtual void bind(ISchedulerHost& host) { host_ = &host; }

  /// A new job entered the cluster.
  virtual void onJobArrival(const Job& job) = 0;

  /// A run finished on `node`; the node is now idle. (Preemptions initiated
  /// by the policy itself do NOT trigger this callback: preempt() returns
  /// the remainder synchronously.)
  virtual void onRunFinished(NodeId node, const RunReport& report) = 0;

  /// A timer scheduled via ISchedulerHost::scheduleTimer fired.
  virtual void onTimer(TimerId timer) { (void)timer; }

 protected:
  ISchedulerHost& host() const { return *host_; }

 private:
  ISchedulerHost* host_ = nullptr;
};

}  // namespace ppsched
