#include "core/cli.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "net/network.h"
#include "sched/eevdf.h"
#include "shard/shard_config.h"

namespace ppsched {

namespace {

[[noreturn]] void fail(const std::string& message) { throw std::invalid_argument(message); }

double parseDouble(const std::string& value, const std::string& flag) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end == value.c_str() || *end != '\0' || !std::isfinite(v)) {
    fail("malformed number for " + flag + ": '" + value + "'");
  }
  return v;
}

std::uint64_t parseUnsigned(const std::string& value, const std::string& flag) {
  if (value.empty() || value.front() == '-' || value.front() == '+') {
    fail(flag + " needs an unsigned integer, got '" + value + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    fail(flag + " needs an unsigned integer, got '" + value + "'");
  }
  return static_cast<std::uint64_t>(v);
}

std::vector<double> parseLoads(const std::string& arg) {
  std::vector<double> loads;
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    std::size_t next = arg.find(',', pos);
    if (next == std::string::npos) next = arg.size();
    loads.push_back(parseDouble(arg.substr(pos, next - pos), "--loads"));
    pos = next + 1;
  }
  if (loads.empty()) fail("--loads needs at least one value");
  return loads;
}

bool knownCommand(const std::string& command) {
  return command == "run" || command == "sweep" || command == "maxload" ||
         command == "replicate" || command == "timeline" || command == "policies" ||
         command == "config";
}

}  // namespace

CliOptions parseCliArgs(const std::vector<std::string>& args) {
  CliOptions opt;
  opt.spec.policyName = "out_of_order";
  opt.spec.jobsPerHour = 1.0;
  if (args.empty()) {
    fail("missing command (try: policies, config, run, sweep, maxload, replicate, timeline)");
  }
  opt.command = args[0];
  if (!knownCommand(opt.command)) fail("unknown command: " + opt.command);

  std::size_t i = 1;
  auto needValue = [&](const std::string& flag) -> const std::string& {
    if (i + 1 >= args.size()) fail("missing value for " + flag);
    return args[++i];
  };
  for (; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--policy") {
      opt.spec.policyName = needValue(flag);
    } else if (flag == "--load") {
      opt.spec.jobsPerHour = parseDouble(needValue(flag), flag);
    } else if (flag == "--nodes") {
      opt.spec.sim.numNodes = static_cast<int>(parseUnsigned(needValue(flag), flag));
    } else if (flag == "--cpus") {
      opt.spec.sim.cpusPerNode = static_cast<int>(parseUnsigned(needValue(flag), flag));
    } else if (flag == "--cache") {
      opt.spec.sim.cacheBytesPerNode =
          static_cast<std::uint64_t>(parseDouble(needValue(flag), flag) * 1e9);
    } else if (flag == "--delay") {
      opt.spec.policyParams.periodDelay = parseDouble(needValue(flag), flag) * units::hour;
    } else if (flag == "--stripe") {
      opt.spec.policyParams.stripeEvents = parseUnsigned(needValue(flag), flag);
    } else if (flag == "--warmup") {
      opt.spec.warmupJobs = parseUnsigned(needValue(flag), flag);
    } else if (flag == "--jobs") {
      opt.spec.measuredJobs = parseUnsigned(needValue(flag), flag);
    } else if (flag == "--seed") {
      opt.spec.seed = parseUnsigned(needValue(flag), flag);
    } else if (flag == "--trace") {
      opt.spec.tracePath = needValue(flag);
    } else if (flag == "--pipelined") {
      opt.spec.sim.cost.pipelined = true;
    } else if (flag == "--tertiary-cap") {
      opt.spec.sim.tertiaryAggregateBytesPerSec = parseDouble(needValue(flag), flag) * 1e6;
    } else if (flag == "--network") {
      opt.spec.sim.network = parseNetworkSpec(needValue(flag));
    } else if (flag == "--shards") {
      opt.spec.sim.shards = parseShardSpec(needValue(flag));
    } else if (flag == "--qos") {
      opt.spec.policyParams.qos = parseQosSpec(needValue(flag));
    } else if (flag == "--loads") {
      opt.loads = parseLoads(needValue(flag));
    } else if (flag == "--lo") {
      opt.lo = parseDouble(needValue(flag), flag);
    } else if (flag == "--hi") {
      opt.hi = parseDouble(needValue(flag), flag);
    } else if (flag == "--replicas") {
      opt.replicas = parseUnsigned(needValue(flag), flag);
    } else if (flag == "--csv") {
      opt.csv = true;
    } else {
      fail("unknown option: " + flag);
    }
  }
  opt.spec.sim.finalize();
  // Periods legitimately hold many jobs for delayed-family policies.
  if (opt.spec.policyName == "delayed" || opt.spec.policyName == "adaptive" ||
      opt.spec.policyName == "mixed") {
    opt.spec.maxJobsInSystem = 4000;
  }
  return opt;
}

}  // namespace ppsched
