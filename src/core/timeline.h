// ASCII timeline ("Gantt") renderer for schedules.
//
// Consumes an EventLog and reconstructs, per node, which job occupied it
// when (RunStart .. RunEnd/Preempt). renderTimeline() draws one row per
// node over a time window, one character per bucket:
//
//   node 0 |000001111111...2222|
//   node 1 |00000xxxx1111111...|
//
// Digits are job ids modulo 10 (the dominant job in the bucket), '.' is
// idle, 'x' marks a node-down window (failure model). Useful for eyeballing
// policy behaviour and asserted in tests via busyIntervals().
#pragma once

#include <string>
#include <vector>

#include "core/event_log.h"

namespace ppsched {

/// One contiguous occupation of a node by a job.
struct BusyInterval {
  NodeId node = kNoNode;
  JobId job = kNoJob;
  SimTime begin = 0.0;
  SimTime end = 0.0;

  friend bool operator==(const BusyInterval&, const BusyInterval&) = default;
};

/// Reconstruct per-node busy intervals from a log. Runs still open at
/// `endTime` are closed there (RunEnd, Preempt and RunLost all close a
/// run). Intervals are returned sorted by (node, begin). Throws
/// std::runtime_error on malformed logs (e.g. RunEnd without RunStart).
std::vector<BusyInterval> busyIntervals(const EventLog& log, int numNodes, SimTime endTime);

/// Per-node down windows (NodeDown .. NodeUp) from a log; windows still
/// open at `endTime` are closed there. `job` is kNoJob in every entry.
std::vector<BusyInterval> downIntervals(const EventLog& log, int numNodes, SimTime endTime);

/// Per-node windows during which at least one network flow was open towards
/// the node (FlowOpen .. FlowClose, depth-counted — overlapping flows merge
/// into one interval). Windows still open at `endTime` are closed there;
/// `job` is kNoJob in every entry. Empty when the network model is off.
std::vector<BusyInterval> flowIntervals(const EventLog& log, int numNodes, SimTime endTime);

struct TimelineOptions {
  SimTime begin = 0.0;
  SimTime end = 0.0;    ///< 0 = last event time
  int width = 72;       ///< characters per row
  bool header = true;   ///< include the time axis line
};

/// Render the log as one text row per node.
std::string renderTimeline(const EventLog& log, int numNodes, TimelineOptions options = {});

/// Fraction of [begin, end] each node spent busy, from the log.
std::vector<double> nodeUtilization(const EventLog& log, int numNodes, SimTime begin,
                                    SimTime end);

}  // namespace ppsched
