// Experiment harness: runs whole simulations and parameter sweeps.
//
// This is the layer the benches and examples talk to: one call = one
// steady-state measurement (warm-up excluded, overload detected), matching
// how the paper produces each point of Figs 2-7.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "core/registry.h"
#include "sim/thread_pool.h"

namespace ppsched {

struct ExperimentSpec {
  /// Base configuration; `workload.jobsPerHour` is overwritten per run.
  SimConfig sim = SimConfig::paperDefaults();
  std::string policyName = "farm";
  PolicyParams policyParams;
  double jobsPerHour = 1.0;
  std::uint64_t seed = 42;
  /// Steady state: ignore the first `warmupJobs` completions-by-id, measure
  /// the next `measuredJobs`.
  std::size_t warmupJobs = 300;
  std::size_t measuredJobs = 1500;
  /// Abort (and mark overloaded) when this many jobs pile up in the system.
  std::size_t maxJobsInSystem = 400;
  /// Fill RunResult::waitHistogram (Fig 4).
  bool withHistogram = false;
  /// Pre-fill every node's disk cache with segments drawn from the
  /// workload's start-point distribution before the run, shortening the
  /// cold-start transient the paper excludes from its measurements (§3.4).
  bool prewarmCaches = false;
};

/// Run one simulation to completion and aggregate its metrics.
RunResult runExperiment(const ExperimentSpec& spec);

struct LoadPoint {
  double jobsPerHour = 0.0;
  RunResult result;
};

/// Run one simulation per load value. With `pool`, points run in parallel
/// (each owns its engine/rng; nothing is shared). Results are in input
/// order; every point gets an independent derived seed.
std::vector<LoadPoint> loadSweep(const ExperimentSpec& base, std::span<const double> loads,
                                 ThreadPool* pool = nullptr);

/// Bisect for the highest load (within `tolerance`, jobs/hour) that is not
/// overloaded. `lo` must be sustainable and `hi` overloaded (both are
/// checked; throws std::invalid_argument otherwise).
double findMaxSustainableLoad(const ExperimentSpec& base, double lo, double hi,
                              double tolerance = 0.05);

/// Aggregate over independent replications (different derived seeds) of the
/// same experiment. Standard errors are of the mean across replicas.
struct ReplicatedResult {
  std::vector<RunResult> runs;
  double meanSpeedup = 0.0;
  double speedupStdErr = 0.0;
  double meanWaitHours = 0.0;
  double waitHoursStdErr = 0.0;
  std::size_t overloadedRuns = 0;
  /// Majority verdict across replicas.
  bool overloaded = false;
};

/// Run `replicas` independent copies of `spec` (seeds derived from
/// spec.seed) and aggregate. With `pool`, replicas run in parallel.
ReplicatedResult runReplicated(const ExperimentSpec& spec, std::size_t replicas,
                               ThreadPool* pool = nullptr);

}  // namespace ppsched
