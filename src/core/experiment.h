// Experiment harness: runs whole simulations and parameter sweeps.
//
// This is the layer the benches and examples talk to: one call = one
// steady-state measurement (warm-up excluded, overload detected), matching
// how the paper produces each point of Figs 2-7.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "core/registry.h"
#include "sim/thread_pool.h"
#include "workload/generator.h"

namespace ppsched {

struct ExperimentSpec {
  /// Base configuration; `workload.jobsPerHour` is overwritten per run.
  SimConfig sim = SimConfig::paperDefaults();
  std::string policyName = "farm";
  PolicyParams policyParams;
  double jobsPerHour = 1.0;
  std::uint64_t seed = 42;
  /// Replay a trace file instead of the synthetic generator. The file is
  /// streamed job by job (O(1) memory in the trace length); the format —
  /// ppsched CSV (workload/trace.h) or IN2P3 batch records
  /// (workload/in2p3.h) — is auto-detected from the first content line.
  /// `jobsPerHour` is ignored: the trace dictates the arrivals.
  std::string tracePath;
  /// Fully custom job source (overrides tracePath and the generator): one
  /// factory call per run, so sweeps/replications get independent sources.
  /// The factory must be safe to call from worker threads.
  std::function<std::unique_ptr<JobSource>()> sourceFactory;
  /// Steady state: ignore the first `warmupJobs` completions-by-id, measure
  /// the next `measuredJobs`.
  std::size_t warmupJobs = 300;
  std::size_t measuredJobs = 1500;
  /// Abort (and mark overloaded) when this many jobs pile up in the system.
  std::size_t maxJobsInSystem = 400;
  /// Fill RunResult::waitHistogram (Fig 4).
  bool withHistogram = false;
  /// Pre-fill every node's disk cache with segments drawn from the
  /// workload's start-point distribution before the run, shortening the
  /// cold-start transient the paper excludes from its measurements (§3.4).
  bool prewarmCaches = false;
};

/// Run one simulation to completion and aggregate its metrics.
RunResult runExperiment(const ExperimentSpec& spec);

/// Open a trace file as a streaming JobSource, auto-detecting the format:
/// a header line naming columns (submit_time,user,...) selects the IN2P3
/// batch-record reader, numeric CSV the ppsched trace format. Mapping
/// parameters (data-space size, reference event cost, minimal job size)
/// come from `cfg`, which must be finalized. Ids are renumbered densely so
/// any well-formed trace can drive the engine. `interactiveGroups` names
/// the IN2P3 group labels whose jobs are classed interactive (ignored for
/// ppsched CSV traces, which carry the class column themselves).
std::unique_ptr<JobSource> openTraceSource(const std::string& path, const SimConfig& cfg,
                                           const std::vector<std::string>& interactiveGroups = {});

struct LoadPoint {
  double jobsPerHour = 0.0;
  RunResult result;
};

/// Run one simulation per load value. With `pool`, points run in parallel
/// (each owns its engine/rng; nothing is shared). Results are in input
/// order; every point gets an independent derived seed.
std::vector<LoadPoint> loadSweep(const ExperimentSpec& base, std::span<const double> loads,
                                 ThreadPool* pool = nullptr);

/// Bisect for the highest load (within `tolerance`, jobs/hour) that is not
/// overloaded. `lo` must be sustainable and `hi` overloaded (both are
/// checked; throws std::invalid_argument otherwise).
double findMaxSustainableLoad(const ExperimentSpec& base, double lo, double hi,
                              double tolerance = 0.05);

/// Aggregate over independent replications (different derived seeds) of the
/// same experiment. Standard errors are of the mean across replicas.
struct ReplicatedResult {
  std::vector<RunResult> runs;
  double meanSpeedup = 0.0;
  double speedupStdErr = 0.0;
  double meanWaitHours = 0.0;
  double waitHoursStdErr = 0.0;
  std::size_t overloadedRuns = 0;
  /// Majority verdict across replicas.
  bool overloaded = false;
};

/// Run `replicas` independent copies of `spec` (seeds derived from
/// spec.seed) and aggregate. With `pool`, replicas run in parallel.
ReplicatedResult runReplicated(const ExperimentSpec& spec, std::size_t replicas,
                               ThreadPool* pool = nullptr);

}  // namespace ppsched
