// Simulation configuration: every parameter of §2.4 of the paper, with the
// paper's values as defaults (see DESIGN.md §2 for the calibration).
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "shard/shard_config.h"
#include "sim/time.h"
#include "storage/rates.h"
#include "workload/generator.h"

namespace ppsched {

/// One scheduled unavailability window of the tertiary storage system
/// (Castor maintenance, tape-robot downtime). Tertiary spans that would
/// start inside a window stall until it ends; spans already streaming
/// continue undisturbed.
struct OutageWindow {
  SimTime start = 0.0;
  Duration duration = 0.0;

  [[nodiscard]] SimTime end() const { return start + duration; }
};

/// Node failure / recovery model. The paper's cluster (§2) assumes nodes
/// never die; production farms do not. Failures strike whole physical
/// machines (all CPU slots of a node at once): the active runs are lost
/// back to their last span boundary and, by default, the node's disk cache
/// is wiped.
struct FailureConfig {
  /// Mean time between failures of one machine (exponential, seconds).
  /// 0 disables stochastic failures entirely — the default keeps every
  /// existing experiment bit-identical.
  double meanTimeBetweenFailuresSec = 0.0;
  /// Mean time to repair a failed machine (exponential, seconds). Must be
  /// > 0 when failures are enabled.
  double meanTimeToRepairSec = 2 * units::hour;
  /// A crash loses the machine's disk cache contents (true models real
  /// disks; false models a cache surviving on stable storage).
  bool loseCacheOnFailure = true;
  /// Seed of the failure/repair random stream. Independent from the
  /// workload stream so enabling failures never perturbs the arrivals.
  std::uint64_t seed = 0xFA17'5EEDULL;
  /// Scheduled tertiary-storage outages; sorted by start at finalize().
  std::vector<OutageWindow> tertiaryOutages;

  [[nodiscard]] bool enabled() const { return meanTimeBetweenFailuresSec > 0.0; }
};

struct SimConfig {
  /// Number of processing nodes (the master node is implicit; it runs no
  /// subjobs). Paper default: 10 (5 and 20 "lead to similar results").
  int numNodes = 10;

  /// Logical CPUs per node (SMP extension; the paper assumes single-CPU
  /// machines, §2.4). CPUs of one node share its disk cache; the scheduler
  /// sees numNodes*cpusPerNode schedulable slots.
  int cpusPerNode = 1;

  /// Per-event cost model (CPU 0.2 s, disk 10 MB/s, tertiary 1 MB/s, ...).
  CostModel cost;

  /// Total data space (paper: 2 TB, decimal units).
  std::uint64_t totalDataBytes = 2'000'000'000'000ULL;

  /// Node disk cache (paper: 50, 100 or 200 GB; default 100 GB).
  std::uint64_t cacheBytesPerNode = 100'000'000'000ULL;

  /// Optional aggregate bandwidth cap of the tertiary storage system across
  /// all concurrent streams (bytes/s). 0 disables contention — the paper's
  /// model gives every node a dedicated 1 MB/s stream (§2.4). When set, a
  /// tertiary span's rate is min(per-node, aggregate / concurrent streams),
  /// fixed at span start (see DESIGN.md §6 for the approximation).
  double tertiaryAggregateBytesPerSec = 0.0;

  /// Fixed latency before a tertiary stream starts delivering (seconds).
  /// The paper sets this to 0: Castor's disk-array front-end hides tape
  /// latency (§2.4). Non-zero values model Castor disk-cache misses / tape
  /// mounts; each tertiary span pays it once.
  double tertiaryLatencySec = 0.0;

  /// Per-node CPU speed factors (1.0 = the paper's reference CPU). Empty
  /// means a homogeneous cluster (the paper's assumption, §2.4); otherwise
  /// the vector must have one entry per node, each > 0. Only CPU time
  /// scales; disk and network throughputs stay per the cost model.
  std::vector<double> nodeSpeedFactors;

  /// Workload model. `workload.totalEvents` is overwritten from
  /// totalDataBytes at validation time so the two cannot diverge.
  WorkloadParams workload;

  /// Policies never split below this many events (paper: 10).
  std::uint64_t minSubjobEvents = 10;

  /// Engine granularity: a run re-plans its data source at most every this
  /// many events. Smaller = more faithful eviction dynamics, slower.
  std::uint64_t maxSpanEvents = 5000;

  /// Node failure / tertiary-outage model (disabled by default).
  FailureConfig failures;

  /// Flow-level network contention model (disabled by default — the
  /// paper's §2.3 unconstrained-LAN assumption). See net/network.h.
  NetworkConfig network;

  /// Sharded multi-master scheduling (disabled by default — the paper's
  /// single global master). See shard/shard_config.h.
  ShardConfig shards;

  /// Derived quantities ------------------------------------------------

  [[nodiscard]] std::uint64_t totalEvents() const {
    return totalDataBytes / static_cast<std::uint64_t>(cost.bytesPerEvent);
  }
  [[nodiscard]] std::uint64_t cacheEvents() const {
    return cacheBytesPerNode / static_cast<std::uint64_t>(cost.bytesPerEvent);
  }

  /// Mean single-job single-node no-cache processing time (paper: 32000 s).
  [[nodiscard]] double meanSingleNodeTime() const {
    return cost.uncachedSecPerEvent() * workload.meanJobEvents;
  }

  /// Total schedulable CPU slots.
  [[nodiscard]] int totalCpus() const { return numNodes * cpusPerNode; }

  /// Maximal theoretically sustainable load: all CPUs busy, all data read
  /// from cache (paper: 3.46 jobs/hour).
  [[nodiscard]] double maxTheoreticalLoadJobsPerHour() const {
    return totalCpus() * units::hour / (cost.cachedSecPerEvent() * workload.meanJobEvents);
  }

  /// Maximal load of the cache-less processing farm (paper: ~1.1 jobs/hour).
  [[nodiscard]] double maxFarmLoadJobsPerHour() const {
    return totalCpus() * units::hour / meanSingleNodeTime();
  }

  /// Fill derived fields and check invariants (throws std::invalid_argument).
  void finalize();

  /// The paper's §2.4 configuration, ready to run.
  static SimConfig paperDefaults();
};

}  // namespace ppsched
