// Simulation configuration: every parameter of §2.4 of the paper, with the
// paper's values as defaults (see DESIGN.md §2 for the calibration).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "storage/rates.h"
#include "workload/generator.h"

namespace ppsched {

struct SimConfig {
  /// Number of processing nodes (the master node is implicit; it runs no
  /// subjobs). Paper default: 10 (5 and 20 "lead to similar results").
  int numNodes = 10;

  /// Logical CPUs per node (SMP extension; the paper assumes single-CPU
  /// machines, §2.4). CPUs of one node share its disk cache; the scheduler
  /// sees numNodes*cpusPerNode schedulable slots.
  int cpusPerNode = 1;

  /// Per-event cost model (CPU 0.2 s, disk 10 MB/s, tertiary 1 MB/s, ...).
  CostModel cost;

  /// Total data space (paper: 2 TB, decimal units).
  std::uint64_t totalDataBytes = 2'000'000'000'000ULL;

  /// Node disk cache (paper: 50, 100 or 200 GB; default 100 GB).
  std::uint64_t cacheBytesPerNode = 100'000'000'000ULL;

  /// Optional aggregate bandwidth cap of the tertiary storage system across
  /// all concurrent streams (bytes/s). 0 disables contention — the paper's
  /// model gives every node a dedicated 1 MB/s stream (§2.4). When set, a
  /// tertiary span's rate is min(per-node, aggregate / concurrent streams),
  /// fixed at span start (see DESIGN.md §6 for the approximation).
  double tertiaryAggregateBytesPerSec = 0.0;

  /// Fixed latency before a tertiary stream starts delivering (seconds).
  /// The paper sets this to 0: Castor's disk-array front-end hides tape
  /// latency (§2.4). Non-zero values model Castor disk-cache misses / tape
  /// mounts; each tertiary span pays it once.
  double tertiaryLatencySec = 0.0;

  /// Per-node CPU speed factors (1.0 = the paper's reference CPU). Empty
  /// means a homogeneous cluster (the paper's assumption, §2.4); otherwise
  /// the vector must have one entry per node, each > 0. Only CPU time
  /// scales; disk and network throughputs stay per the cost model.
  std::vector<double> nodeSpeedFactors;

  /// Workload model. `workload.totalEvents` is overwritten from
  /// totalDataBytes at validation time so the two cannot diverge.
  WorkloadParams workload;

  /// Policies never split below this many events (paper: 10).
  std::uint64_t minSubjobEvents = 10;

  /// Engine granularity: a run re-plans its data source at most every this
  /// many events. Smaller = more faithful eviction dynamics, slower.
  std::uint64_t maxSpanEvents = 5000;

  /// Derived quantities ------------------------------------------------

  [[nodiscard]] std::uint64_t totalEvents() const {
    return totalDataBytes / static_cast<std::uint64_t>(cost.bytesPerEvent);
  }
  [[nodiscard]] std::uint64_t cacheEvents() const {
    return cacheBytesPerNode / static_cast<std::uint64_t>(cost.bytesPerEvent);
  }

  /// Mean single-job single-node no-cache processing time (paper: 32000 s).
  [[nodiscard]] double meanSingleNodeTime() const {
    return cost.uncachedSecPerEvent() * workload.meanJobEvents;
  }

  /// Total schedulable CPU slots.
  [[nodiscard]] int totalCpus() const { return numNodes * cpusPerNode; }

  /// Maximal theoretically sustainable load: all CPUs busy, all data read
  /// from cache (paper: 3.46 jobs/hour).
  [[nodiscard]] double maxTheoreticalLoadJobsPerHour() const {
    return totalCpus() * units::hour / (cost.cachedSecPerEvent() * workload.meanJobEvents);
  }

  /// Maximal load of the cache-less processing farm (paper: ~1.1 jobs/hour).
  [[nodiscard]] double maxFarmLoadJobsPerHour() const {
    return totalCpus() * units::hour / meanSingleNodeTime();
  }

  /// Fill derived fields and check invariants (throws std::invalid_argument).
  void finalize();

  /// The paper's §2.4 configuration, ready to run.
  static SimConfig paperDefaults();
};

}  // namespace ppsched
