// Analytic queueing models.
//
// §3.1 of the paper: the processing farm "can be described ... as a special
// case of a M/Er/m queuing system" [Kleinrock]. We provide Erlang-B/C and
// the Allen–Cunneen approximation for M/G/m waiting times; with Erlang-k
// service (squared coefficient of variation 1/k) this gives the M/Er/m
// prediction that the farm simulation is validated against in the tests and
// in bench/sec34_farm_vs_theory.
#pragma once

namespace ppsched {

/// Erlang-B blocking probability for m servers at offered load a = lambda*E[S].
double erlangB(int servers, double offeredLoad);

/// Erlang-C probability that an arriving job must wait (M/M/m).
/// Requires offeredLoad < servers (stable system).
double erlangC(int servers, double offeredLoad);

/// Analytic multi-server queue description.
struct QueueModel {
  int servers = 1;
  double arrivalRatePerSec = 0.0;   ///< lambda
  double meanServiceSec = 0.0;      ///< E[S]
  double serviceScv = 1.0;          ///< squared coefficient of variation of S
                                    ///< (Erlang-k service: 1/k)

  [[nodiscard]] double offeredLoad() const { return arrivalRatePerSec * meanServiceSec; }
  [[nodiscard]] double utilization() const { return offeredLoad() / servers; }
  [[nodiscard]] bool stable() const { return utilization() < 1.0; }

  /// Mean queueing delay of the corresponding M/M/m system (exact).
  [[nodiscard]] double meanWaitMMm() const;

  /// Allen–Cunneen approximation of the M/G/m mean queueing delay:
  /// Wq(M/G/m) ~= (Ca^2 + Cs^2)/2 * Wq(M/M/m), with Poisson arrivals
  /// (Ca^2 = 1).
  [[nodiscard]] double meanWaitApprox() const;

  /// Largest arrival rate (jobs/sec) the system can sustain.
  [[nodiscard]] double maxArrivalRatePerSec() const { return servers / meanServiceSec; }
};

/// Convenience: the M/Er/m model of the paper's processing farm.
/// `jobsPerHour` arrivals, Erlang-`shape` service with mean
/// `meanServiceSec`, `servers` nodes.
QueueModel farmQueueModel(int servers, double jobsPerHour, double meanServiceSec, int shape);

}  // namespace ppsched
