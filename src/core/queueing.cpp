#include "core/queueing.h"

#include <stdexcept>

#include "sim/time.h"

namespace ppsched {

double erlangB(int servers, double offeredLoad) {
  if (servers < 0 || offeredLoad < 0.0) throw std::invalid_argument("bad Erlang-B arguments");
  // Stable recurrence: B(0) = 1; B(m) = a*B(m-1) / (m + a*B(m-1)).
  double b = 1.0;
  for (int m = 1; m <= servers; ++m) {
    b = offeredLoad * b / (static_cast<double>(m) + offeredLoad * b);
  }
  return b;
}

double erlangC(int servers, double offeredLoad) {
  if (servers < 1) throw std::invalid_argument("Erlang-C needs >= 1 server");
  if (offeredLoad >= static_cast<double>(servers)) {
    throw std::invalid_argument("Erlang-C requires a stable system (a < m)");
  }
  const double b = erlangB(servers, offeredLoad);
  const double rho = offeredLoad / static_cast<double>(servers);
  return b / (1.0 - rho + rho * b);
}

double QueueModel::meanWaitMMm() const {
  if (!stable()) throw std::invalid_argument("unstable queue has no mean wait");
  const double c = erlangC(servers, offeredLoad());
  const double mu = 1.0 / meanServiceSec;
  return c / (static_cast<double>(servers) * mu - arrivalRatePerSec);
}

double QueueModel::meanWaitApprox() const {
  const double ca2 = 1.0;  // Poisson arrivals
  return (ca2 + serviceScv) / 2.0 * meanWaitMMm();
}

QueueModel farmQueueModel(int servers, double jobsPerHour, double meanServiceSec, int shape) {
  if (shape < 1) throw std::invalid_argument("Erlang shape must be >= 1");
  QueueModel q;
  q.servers = servers;
  q.arrivalRatePerSec = jobsPerHour / units::hour;
  q.meanServiceSec = meanServiceSec;
  q.serviceScv = 1.0 / static_cast<double>(shape);
  return q;
}

}  // namespace ppsched
