#include "core/config.h"

#include <algorithm>
#include <stdexcept>

namespace ppsched {

void SimConfig::finalize() {
  if (numNodes < 1) throw std::invalid_argument("numNodes must be >= 1");
  if (cpusPerNode < 1) throw std::invalid_argument("cpusPerNode must be >= 1");
  if (cost.bytesPerEvent <= 0.0) throw std::invalid_argument("bytesPerEvent must be > 0");
  if (cost.cpuSecPerEvent < 0.0) throw std::invalid_argument("cpuSecPerEvent must be >= 0");
  if (cost.diskBytesPerSec <= 0.0 || cost.tertiaryBytesPerSec <= 0.0 ||
      cost.remoteBytesPerSec <= 0.0) {
    throw std::invalid_argument("throughputs must be > 0");
  }
  if (totalEvents() == 0) throw std::invalid_argument("data space smaller than one event");
  if (tertiaryAggregateBytesPerSec < 0.0) {
    throw std::invalid_argument("tertiaryAggregateBytesPerSec must be >= 0");
  }
  if (tertiaryLatencySec < 0.0) throw std::invalid_argument("tertiaryLatencySec must be >= 0");
  if (!nodeSpeedFactors.empty()) {
    if (nodeSpeedFactors.size() != static_cast<std::size_t>(totalCpus())) {
      throw std::invalid_argument("nodeSpeedFactors must have one entry per CPU slot");
    }
    for (const double f : nodeSpeedFactors) {
      if (!(f > 0.0)) throw std::invalid_argument("node speed factors must be > 0");
    }
  }
  if (minSubjobEvents == 0) throw std::invalid_argument("minSubjobEvents must be >= 1");
  if (maxSpanEvents == 0) throw std::invalid_argument("maxSpanEvents must be >= 1");
  if (failures.meanTimeBetweenFailuresSec < 0.0) {
    throw std::invalid_argument("meanTimeBetweenFailuresSec must be >= 0");
  }
  if (failures.enabled() && failures.meanTimeToRepairSec <= 0.0) {
    throw std::invalid_argument("meanTimeToRepairSec must be > 0 when failures are enabled");
  }
  for (const OutageWindow& w : failures.tertiaryOutages) {
    if (w.start < 0.0 || w.duration <= 0.0) {
      throw std::invalid_argument("outage windows need start >= 0 and duration > 0");
    }
  }
  if (network.enabled) {
    if (network.nicBytesPerSec <= 0.0) {
      throw std::invalid_argument("network.nicBytesPerSec must be > 0 when enabled");
    }
    if (network.uplinkBytesPerSec < 0.0) {
      throw std::invalid_argument("network.uplinkBytesPerSec must be >= 0");
    }
    if (network.tertiaryIngressBytesPerSec < 0.0) {
      throw std::invalid_argument("network.tertiaryIngressBytesPerSec must be >= 0");
    }
    if (network.nodesPerSwitch < 0) {
      throw std::invalid_argument("network.nodesPerSwitch must be >= 0");
    }
  }
  if (shards.count < 0) throw std::invalid_argument("shards.count must be >= 0");
  if (shards.enabled()) {
    if (shards.count > numNodes) {
      throw std::invalid_argument("shards.count must be <= numNodes");
    }
    if (shards.digestPeriodSec < 0.0) {
      throw std::invalid_argument("shards.digestPeriodSec must be >= 0");
    }
    if (shards.admit < 0) throw std::invalid_argument("shards.admit must be >= 0");
    if (shards.buckets < 1) throw std::invalid_argument("shards.buckets must be >= 1");
    if (shards.route != "affinity" && shards.route != "rr") {
      throw std::invalid_argument("shards.route must be affinity|rr");
    }
  }
  std::sort(failures.tertiaryOutages.begin(), failures.tertiaryOutages.end(),
            [](const OutageWindow& a, const OutageWindow& b) { return a.start < b.start; });
  workload.totalEvents = totalEvents();
  if (workload.minJobEvents < minSubjobEvents) workload.minJobEvents = minSubjobEvents;
}

SimConfig SimConfig::paperDefaults() {
  SimConfig cfg;  // members default to the paper's §2.4 values
  // The paper's cost arithmetic (0.8 s/event uncached, 0.26 cached) is the
  // serial fetch-then-process model; pin it against the pipelined default.
  cfg.cost.pipelined = false;
  cfg.finalize();
  return cfg;
}

}  // namespace ppsched
