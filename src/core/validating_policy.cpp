#include "core/validating_policy.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/engine.h"

namespace ppsched {

ValidatingPolicy::ValidatingPolicy(std::unique_ptr<ISchedulerPolicy> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("ValidatingPolicy needs an inner policy");
}

void ValidatingPolicy::bind(ISchedulerHost& host) {
  ISchedulerPolicy::bind(host);
  inner_->bind(host);
}

void ValidatingPolicy::onJobArrival(const Job& job) {
  inner_->onJobArrival(job);
  checkInvariants();
}

void ValidatingPolicy::onRunFinished(NodeId node, const RunReport& report) {
  inner_->onRunFinished(node, report);
  checkInvariants();
}

void ValidatingPolicy::onTimer(TimerId timer) {
  inner_->onTimer(timer);
  checkInvariants();
}

void ValidatingPolicy::onNodeDown(NodeId node, const RunReport* lost) {
  inner_->onNodeDown(node, lost);
  checkInvariants();
}

void ValidatingPolicy::onNodeUp(NodeId node) {
  inner_->onNodeUp(node);
  checkInvariants();
}

void ValidatingPolicy::checkInvariants() {
  ++checks_;
  ISchedulerHost& e = host();
  auto violation = [&](const std::string& what) {
    std::ostringstream os;
    os << "invariant violation at t=" << e.now() << " under " << inner_->name() << ": "
       << what;
    throw std::logic_error(os.str());
  };

  // Cache accounting per node.
  for (NodeId n = 0; n < e.numNodes(); ++n) {
    const LruExtentCache& cache = e.cluster().node(n).cache();
    if (cache.used() > cache.capacity()) violation("cache used > capacity");
    if (cache.contents().size() != cache.used()) violation("cache contents out of sync");
  }

  // Running subjobs: ranges disjoint per job, and contained in the job's
  // remaining set; completed jobs never run; down nodes run nothing.
  std::map<JobId, IntervalSet> runningByJob;
  for (NodeId n = 0; n < e.numNodes(); ++n) {
    const auto view = e.running(n);
    if (!e.isUp(n)) {
      if (view.active) violation("down node still running");
      if (e.isIdle(n)) violation("down node reported idle");
      continue;
    }
    if (!view.active) continue;
    const JobId job = view.subjob.job;
    if (e.jobDone(job)) violation("completed job still running");
    // The quantized remaining view is a conservative subset of the span.
    if (!e.remainingOf(job).containsRange(view.remaining)) {
      violation("running range is not remaining work");
    }
    if (runningByJob[job].intersects(view.remaining)) {
      violation("two nodes process overlapping ranges");
    }
    runningByJob[job].insert(view.remaining);
  }

  // Network invariants (simulator with the flow model enabled only).
  const auto* engine = dynamic_cast<const Engine*>(&e);
  if (engine == nullptr || !engine->flowNetwork().enabled()) return;
  const FlowNetwork& net = engine->flowNetwork();
  const int cpus = std::max(1, e.config().cpusPerNode);
  auto machineUp = [&](int machine) { return e.isUp(machine * cpus); };

  // No flow may reference a down machine's (closed) links.
  for (const FlowNetwork::FlowState& f : net.flowStates()) {
    if (f.srcMachine != FlowNetwork::kTertiarySource && !machineUp(f.srcMachine)) {
      violation("flow served by a down machine");
    }
    if (!machineUp(f.dstMachine)) violation("flow towards a down machine");
    if (!(f.allocBytesPerSec > 0.0)) violation("open flow with no allocation");
  }

  // Per-link: instantaneous allocation and the utilization integral stay
  // within capacity (× elapsed time, for the integral).
  constexpr double kSlack = 1.0 + 1e-6;
  for (const FlowNetwork::LinkState& l : net.linkStates()) {
    if (l.allocatedBytesPerSec > l.capacityBytesPerSec * kSlack) {
      violation("link over-allocated: " + l.name);
    }
  }
  for (const LinkReport& l : engine->networkReport().links) {
    if (l.utilization > kSlack) {
      violation("link utilization integral exceeds capacity x time: " + l.name);
    }
  }

  // Every replica copy lands in exactly one cache: copies in flight to one
  // machine are pairwise disjoint, and their destinations are alive.
  std::map<int, IntervalSet> copiesByMachine;
  for (const Engine::TransferView& tr : engine->activeTransfers()) {
    if (!machineUp(tr.dstNode / cpus)) violation("replica copy towards a down machine");
    IntervalSet& set = copiesByMachine[tr.dstNode / cpus];
    if (set.intersects(tr.range)) violation("overlapping replica copies to one machine");
    set.insert(tr.range);
  }
}

}  // namespace ppsched
