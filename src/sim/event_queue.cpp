#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace ppsched {

namespace {
/// Below this size a compaction pass costs more than it saves.
constexpr std::size_t kCompactionFloor = 64;
/// Heap fan-out; see the header for why 4.
constexpr std::size_t kArity = 4;
}  // namespace

void EventQueue::checkScheduleTime(SimTime at) const {
  if (!(at >= lastPopped_)) {
    throw std::logic_error("EventQueue::schedule: event time precedes the last popped event");
  }
}

EventId EventQueue::schedule(SimTime at, Callback cb) {
  checkScheduleTime(at);
  const std::uint32_t slot = allocEmptySlot();
  slotRef(slot) = std::move(cb);
  return pushEntry(at, slot);
}

EventId EventQueue::pushEntry(SimTime at, std::uint32_t slot) {
  const EventId id = nextId_++;
  if ((id & 63) == 0) cancelled_.push_back(0);
  heap_.push_back(Entry{at, id, slot});
  siftUp(heap_.size() - 1);
  ++liveCount_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id >= nextId_ || isCancelled(id)) return;
  markCancelled(id);
  if (liveCount_ > 0) --liveCount_;
}

std::uint32_t EventQueue::allocEmptySlot() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const std::uint32_t slot = poolSize_++;
  if ((slot & (kPoolChunkSize - 1)) == 0) {
    pool_.push_back(std::make_unique<Callback[]>(kPoolChunkSize));
  }
  return slot;
}

void EventQueue::freeSlot(std::uint32_t slot) const {
  slotRef(slot).reset();
  free_.push_back(slot);
}

void EventQueue::siftUp(std::size_t i) {
  Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::siftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  Entry e = heap_[i];
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      best = earlier(heap_[c], heap_[best]) ? c : best;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::rebuild() {
  if (heap_.size() < 2) return;
  for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) siftDown(i);
}

void EventQueue::removeRoot() const {
  const Entry e = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first = kArity * hole + 1;
    std::size_t best;
    if (first + kArity <= n) {
      // Full child group: a branchless pairwise tournament (3 selects, no
      // data-dependent branches).
      const Entry* c = &heap_[first];
      const std::size_t b01 = first + (earlier(c[1], c[0]) ? 1u : 0u);
      const std::size_t b23 = first + 2 + (earlier(c[3], c[2]) ? 1u : 0u);
      best = earlier(heap_[b23], heap_[b01]) ? b23 : b01;
    } else {
      if (first >= n) break;
      const std::size_t last = std::min(first + kArity, n);
      best = first;
      for (std::size_t ci = first + 1; ci < last; ++ci) {
        best = earlier(heap_[ci], heap_[best]) ? ci : best;
      }
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = e;
}

void EventQueue::popTop() const {
  freeSlot(heap_.front().slot);
  removeRoot();
}

void EventQueue::prune() const {
  // Bulk-compact when more than half of the heap is tombstones: partition
  // the live entries to the front, free the dead slots, and rebuild. The
  // (time, id) total order makes the rebuilt heap pop-order identical.
  if (heap_.size() >= kCompactionFloor && heap_.size() > 2 * liveCount_) {
    auto dead = std::partition(heap_.begin(), heap_.end(),
                               [&](const Entry& e) { return !isCancelled(e.id); });
    for (auto it = dead; it != heap_.end(); ++it) freeSlot(it->slot);
    heap_.erase(dead, heap_.end());
    const_cast<EventQueue*>(this)->rebuild();
    assert(heap_.size() == liveCount_);
    return;
  }
  while (!heap_.empty() && isCancelled(heap_.front().id)) popTop();
}

SimTime EventQueue::nextTime() const {
  prune();
  if (heap_.empty()) throw std::logic_error("EventQueue::nextTime on empty queue");
  return heap_.front().time;
}

SimTime EventQueue::runNext() {
  prune();
  if (heap_.empty()) throw std::logic_error("EventQueue::runNext on empty queue");
  const Entry top = heap_.front();
  Callback cb = std::move(slotRef(top.slot));
  free_.push_back(top.slot);  // moved-from slot is already empty; no reset()
  removeRoot();
  markCancelled(top.id);  // mark fired so a late cancel() is a no-op
  assert(liveCount_ > 0);
  --liveCount_;
  lastPopped_ = top.time;
  cb();
  return top.time;
}

void EventQueue::clear() {
  heap_.clear();
  pool_.clear();
  poolSize_ = 0;
  free_.clear();
  cancelled_.clear();
  nextId_ = 0;
  liveCount_ = 0;
  lastPopped_ = kMinSimTime;
}

}  // namespace ppsched
