#include "sim/event_queue.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace ppsched {

EventId EventQueue::schedule(SimTime at, Callback cb) {
  const EventId id = nextId_++;
  cancelled_.push_back(false);
  heap_.push(Entry{at, id, std::move(cb)});
  ++liveCount_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id >= cancelled_.size() || cancelled_[id]) return;
  cancelled_[id] = true;
  if (liveCount_ > 0) --liveCount_;
}

void EventQueue::skipCancelled() const {
  while (!heap_.empty() && cancelled_[heap_.top().id]) {
    heap_.pop();
  }
}

SimTime EventQueue::nextTime() const {
  skipCancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::nextTime on empty queue");
  return heap_.top().time;
}

SimTime EventQueue::runNext() {
  skipCancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::runNext on empty queue");
  // priority_queue::top() is const; moving the callback out is safe because
  // the entry is popped immediately afterwards.
  Entry& top = const_cast<Entry&>(heap_.top());
  const SimTime t = top.time;
  const EventId id = top.id;
  Callback cb = std::move(top.cb);
  heap_.pop();
  cancelled_[id] = true;  // mark fired so a late cancel() is a no-op
  assert(liveCount_ > 0);
  --liveCount_;
  cb();
  return t;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  cancelled_.clear();
  nextId_ = 0;
  liveCount_ = 0;
}

}  // namespace ppsched
