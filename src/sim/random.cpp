#include "sim/random.h"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ppsched {

double Rng::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

std::uint64_t Rng::uniformInt(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("exponential mean must be > 0");
  return std::exponential_distribution<double>(1.0 / mean)(gen_);
}

double Rng::erlang(int shape, double mean) {
  if (shape < 1) throw std::invalid_argument("erlang shape must be >= 1");
  if (mean <= 0.0) throw std::invalid_argument("erlang mean must be > 0");
  // Erlang(k, lambda) is Gamma(k, 1/lambda); per-stage mean is mean/shape.
  const double stageMean = mean / shape;
  double sum = 0.0;
  for (int i = 0; i < shape; ++i) sum += exponential(stageMean);
  return sum;
}

std::size_t Rng::weightedIndex(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (!(total > 0.0)) throw std::invalid_argument("weights must sum to > 0");
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) throw std::invalid_argument("negative weight");
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // guard against floating-point round-off
}

bool Rng::chance(double probability) { return uniform01() < probability; }

std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t index) {
  // SplitMix64 step: decorrelates sequential indices into independent seeds.
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t deriveSeed(std::uint64_t base, SeedDomain domain, std::uint64_t index) {
  // Re-base into a per-domain namespace first, then mix the index; two
  // SplitMix64 steps keep streams disjoint for the full uint64 index range.
  return deriveSeed(deriveSeed(base, static_cast<std::uint64_t>(domain)), index);
}

}  // namespace ppsched
