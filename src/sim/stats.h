// Statistics collectors used by the metrics layer and the benches.
//
//  - StreamingStats: count/mean/variance/min/max without storing samples.
//  - SampleSet: stores samples for exact quantiles (job counts are small).
//  - LogHistogram: logarithmically bucketed histogram; reproduces the
//    waiting-time distribution plot of Fig 4 (log-log axes).
//  - TimeWeightedStat: time-average of a piecewise-constant signal (e.g.
//    number of jobs in the system).
//  - LinearTrend: least-squares slope of sampled points; used by the
//    overload detector (queues growing without bound).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/time.h"

namespace ppsched {

/// Welford-style streaming mean/variance plus min/max.
class StreamingStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact running sum of the samples (not reconstructed from the Welford
  /// mean, which accumulates rounding drift over long streams).
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; provides exact quantiles. Intended for per-job
/// metrics where sample counts are in the thousands.
class SampleSet {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  /// Exact quantile by nearest-rank on the sorted samples; q in [0,1].
  /// Precondition: count() > 0.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void sortIfNeeded() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Histogram with logarithmically spaced buckets over [lo, hi]; values
/// outside the range are clamped into the first/last bucket. Matches the
/// paper's Fig 4 presentation (waiting times from ~minutes to days on a log
/// axis).
class LogHistogram {
 public:
  /// `lo` and `hi` must be positive with lo < hi; `buckets` >= 1.
  LogHistogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  [[nodiscard]] std::size_t bucketCount() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t countInBucket(std::size_t i) const { return counts_[i]; }
  /// Geometric lower/upper edge of bucket i.
  [[nodiscard]] double bucketLow(std::size_t i) const;
  [[nodiscard]] double bucketHigh(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  double logLo_;
  double logStep_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Time-average of a piecewise-constant signal: call set(t, v) whenever the
/// signal changes; average over [t0, t1] is available after finish(t1).
class TimeWeightedStat {
 public:
  explicit TimeWeightedStat(SimTime start = 0.0) : lastTime_(start) {}

  /// Record that the signal takes value `v` from time `t` onwards.
  /// `t` must be >= the previous update time.
  void set(SimTime t, double v);

  /// Time-average over [start, t]; 0 if no time has elapsed.
  [[nodiscard]] double average(SimTime t) const;

  [[nodiscard]] double current() const { return value_; }

 private:
  SimTime lastTime_;
  double value_ = 0.0;
  double weightedSum_ = 0.0;
  double elapsed_ = 0.0;
};

/// Least-squares slope over (x, y) samples. Used to detect overload: the
/// number of jobs in the system drifting upward over the measurement window.
class LinearTrend {
 public:
  void add(double x, double y);

  [[nodiscard]] std::size_t count() const { return n_; }
  /// Slope dy/dx of the least-squares fit; 0 for fewer than 2 samples or a
  /// degenerate x-range.
  [[nodiscard]] double slope() const;
  [[nodiscard]] double meanY() const { return n_ ? sumY_ / static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double sumX_ = 0.0, sumY_ = 0.0, sumXX_ = 0.0, sumXY_ = 0.0;
};

}  // namespace ppsched
