// Deterministic random number generation for the simulator.
//
// The workload of the paper needs three distributions:
//   - exponential inter-arrival times (Poisson job arrivals),
//   - Erlang-distributed job sizes (shape 4, mean 40000 events),
//   - the hot-region start-point distribution (weighted uniform mixture).
//
// Everything is seeded explicitly so whole simulations are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace ppsched {

/// Thin wrapper around a 64-bit Mersenne Twister with the distribution
/// helpers the simulator needs. One Rng per simulation; never shared across
/// threads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

  /// Exponential with the given mean (mean = 1/rate). mean must be > 0.
  double exponential(double mean);

  /// Erlang distribution: sum of `shape` iid exponentials, with the given
  /// overall mean. shape must be >= 1.
  /// mean of Erlang(k, lambda) = k/lambda; mode = (k-1)/lambda.
  double erlang(int shape, double mean);

  /// Pick an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative with a positive sum.
  std::size_t weightedIndex(std::span<const double> weights);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Access to the underlying engine (for std distributions in tests).
  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

/// Derive a distinct child seed from a base seed and an index, so that
/// parameter sweeps can give every run an independent, reproducible stream.
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t index);

/// Purpose tag for derived seed streams.
///
/// Seed-derivation contract: every distinct consumer of child seeds MUST
/// draw from its own domain via deriveSeed(base, domain, index), never by
/// offsetting indices in the shared deriveSeed(base, index) namespace.
/// Ad-hoc offsets (e.g. "1000 + i" for replicas, "7000 + n" for prewarm)
/// collide as soon as another consumer's index range grows past the offset —
/// a ≥1000-point load sweep would silently reuse the replication streams.
/// Domains are mixed through an extra SplitMix64 step, so
/// (domain, index) pairs map to disjoint, decorrelated streams for any
/// index range.
enum class SeedDomain : std::uint64_t {
  Sweep = 1,    // loadSweep: one stream per load point
  Replica = 2,  // runReplicated: one stream per replica
  Prewarm = 3,  // cache prewarm: one stream per node
};

/// Derive the `index`-th child seed of `base` within `domain`.
std::uint64_t deriveSeed(std::uint64_t base, SeedDomain domain, std::uint64_t index);

}  // namespace ppsched
