// Simulation time: seconds as double, with unit helpers.
//
// All of ppsched expresses simulation time in seconds. The paper reports
// loads in jobs/hour and delays in hours/days/weeks, so conversion helpers
// live here to keep call sites readable.
#pragma once

#include <limits>

namespace ppsched {

/// Simulation time in seconds since simulation start.
using SimTime = double;

/// Earliest representable simulation time. The event queue uses it as the
/// "nothing popped yet" watermark for its monotonicity check.
inline constexpr SimTime kMinSimTime = -std::numeric_limits<double>::infinity();

/// A duration in seconds.
using Duration = double;

namespace units {

inline constexpr Duration second = 1.0;
inline constexpr Duration minute = 60.0;
inline constexpr Duration hour = 3600.0;
inline constexpr Duration day = 24.0 * hour;
inline constexpr Duration week = 7.0 * day;

/// Convert seconds to hours (for reporting).
constexpr double toHours(Duration seconds) { return seconds / hour; }

/// Convert a load in jobs/hour to a mean inter-arrival time in seconds.
constexpr Duration interarrivalFromJobsPerHour(double jobsPerHour) {
  return hour / jobsPerHour;
}

}  // namespace units

}  // namespace ppsched
