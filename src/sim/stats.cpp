#include "sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ppsched {

void StreamingStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStats::mean() const { return count_ ? mean_ : 0.0; }

double StreamingStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double StreamingStats::min() const { return count_ ? min_ : 0.0; }

double StreamingStats::max() const { return count_ ? max_ : 0.0; }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = samples_.size() <= 1;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void SampleSet::sortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("quantile of empty SampleSet");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q out of [0,1]");
  sortIfNeeded();
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(rank, samples_.size() - 1)];
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t buckets) {
  if (!(lo > 0.0) || !(hi > lo)) throw std::invalid_argument("LogHistogram needs 0 < lo < hi");
  if (buckets == 0) throw std::invalid_argument("LogHistogram needs >= 1 bucket");
  logLo_ = std::log(lo);
  logStep_ = (std::log(hi) - logLo_) / static_cast<double>(buckets);
  counts_.assign(buckets, 0);
}

void LogHistogram::add(double x) {
  std::size_t i = 0;
  if (x > 0.0) {
    const double pos = (std::log(x) - logLo_) / logStep_;
    if (pos >= static_cast<double>(counts_.size())) {
      i = counts_.size() - 1;
    } else if (pos > 0.0) {
      i = static_cast<std::size_t>(pos);
    }
  }
  ++counts_[i];
  ++total_;
}

double LogHistogram::bucketLow(std::size_t i) const {
  assert(i < counts_.size());
  return std::exp(logLo_ + logStep_ * static_cast<double>(i));
}

double LogHistogram::bucketHigh(std::size_t i) const {
  assert(i < counts_.size());
  return std::exp(logLo_ + logStep_ * static_cast<double>(i + 1));
}

void TimeWeightedStat::set(SimTime t, double v) {
  if (t < lastTime_) throw std::invalid_argument("TimeWeightedStat: time went backwards");
  weightedSum_ += value_ * (t - lastTime_);
  elapsed_ += t - lastTime_;
  lastTime_ = t;
  value_ = v;
}

double TimeWeightedStat::average(SimTime t) const {
  const double total = elapsed_ + std::max(0.0, t - lastTime_);
  if (total <= 0.0) return value_;
  const double sum = weightedSum_ + value_ * std::max(0.0, t - lastTime_);
  return sum / total;
}

void LinearTrend::add(double x, double y) {
  ++n_;
  sumX_ += x;
  sumY_ += y;
  sumXX_ += x * x;
  sumXY_ += x * y;
}

double LinearTrend::slope() const {
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double denom = n * sumXX_ - sumX_ * sumX_;
  if (denom == 0.0) return 0.0;
  return (n * sumXY_ - sumX_ * sumY_) / denom;
}

}  // namespace ppsched
