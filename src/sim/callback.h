// Small-buffer-optimized move-only callable.
//
// The event queue fires millions of callbacks per simulation; std::function
// heap-allocates every capture that exceeds its (implementation-defined,
// often 16-byte) inline buffer, which dominated the scheduling hot path.
// InlineCallback stores captures up to `InlineBytes` in place and only falls
// back to the heap for larger ones. All of the engine's event lambdas
// ([this, job], [this, node], ...) fit inline.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ppsched {

/// Move-only type-erased `void()` callable with `InlineBytes` of inline
/// capture storage. Larger callables are boxed on the heap transparently.
template <std::size_t InlineBytes>
class InlineCallback {
 public:
  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  /*implicit*/ InlineCallback(F&& f) {
    emplaceImpl(std::forward<F>(f));
  }

  /// Destroy the current target (if any) and construct `f` in place — lets a
  /// caller build the capture directly in its final storage instead of
  /// constructing a temporary and moving it in.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& f) {
    reset();
    emplaceImpl(std::forward<F>(f));
  }

  InlineCallback(InlineCallback&& other) noexcept { moveFrom(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  // Null `relocate` means the payload is trivially relocatable: a raw copy of
  // the inline buffer is a valid move-and-destroy. Null `destroy` means the
  // destructor is a no-op. Both hold for the engine's common captures
  // ([this, job], a boxed pointer, ...), turning per-event moves into plain
  // fixed-size copies instead of indirect calls.
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inlineOps{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      std::is_trivially_copyable_v<Fn>
          ? nullptr
          : +[](void* dst, void* src) {
              ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
              static_cast<Fn*>(src)->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  // The box is owned through a raw pointer in the buffer, so relocation is
  // always a pointer copy; only destruction needs the type.
  template <typename Fn>
  static constexpr Ops boxedOps{
      [](void* p) { (**static_cast<Fn**>(p))(); },
      nullptr,
      [](void* p) { delete *static_cast<Fn**>(p); },
  };

  template <typename F>
  void emplaceImpl(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= InlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &boxedOps<Fn>;
    }
  }

  void moveFrom(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(storage_, other.storage_);
      } else {
        std::memcpy(storage_, other.storage_, InlineBytes);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ppsched
