// Minimal thread pool for running independent simulations in parallel.
//
// Parameter sweeps (one simulation per load point / policy / cache size) are
// embarrassingly parallel: each simulation owns its Rng, engine and metrics,
// so tasks share nothing. The pool is a plain fixed-size worker set over a
// mutex-protected queue — adequate for tens of coarse tasks.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ppsched {

class ThreadPool {
 public:
  /// Spawn `threads` workers (at least 1). Defaults to hardware concurrency.
  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::logic_error("submit on stopped ThreadPool");
      tasks_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for all of them.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ppsched
