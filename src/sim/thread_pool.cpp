#include "sim/thread_pool.h"

#include <algorithm>

namespace ppsched {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace ppsched
