// Discrete-event queue.
//
// A 4-ary implicit heap of (time, sequence) keyed events with O(log n)
// push/pop and O(1) lazy cancellation. Sequence numbers make ordering of
// simultaneous events deterministic (FIFO among equal timestamps), which
// keeps whole simulations reproducible for a fixed seed. The popped element
// is always the unique (time, id) minimum, so the heap arity is invisible to
// callers: pop order is identical whatever the internal arrangement. Arity 4
// halves the sift-down depth versus a binary heap and the 24-byte entries
// keep each child group within two cache lines.
//
// Performance layout: the heap itself holds only 24-byte (time, id, slot)
// entries; callbacks live in a pooled slab of small-buffer-optimized
// InlineCallbacks, so scheduling an event neither heap-allocates the capture
// (for captures up to kEventCallbackBytes) nor moves the callback during
// heap sifts. Cancelled events are tombstoned in O(1) and physically removed
// when they surface at the top of the heap — or in bulk, when more than half
// of the heap is dead, by a compaction pass that rebuilds the heap from the
// live entries. Because (time, id) is a strict total order, compaction never
// changes the pop order.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace ppsched {

/// Identifies a scheduled event so it can be cancelled before it fires.
using EventId = std::uint64_t;

/// Inline capture budget for event callbacks. Sized for the engine's largest
/// event lambda ([this, Job] = pointer + Job) with headroom.
inline constexpr std::size_t kEventCallbackBytes = 56;

/// Min-heap of timed callbacks with deterministic tie-breaking and lazy
/// cancellation.
class EventQueue {
 public:
  using Callback = InlineCallback<kEventCallbackBytes>;

  /// Schedule `cb` to fire at absolute time `at`. Returns an id usable with
  /// cancel(). `at` must be >= the time of the last popped event; scheduling
  /// in the past (e.g. from a rollback path) would silently violate the heap
  /// order, so it throws std::logic_error instead. NaN times are rejected
  /// the same way.
  EventId schedule(SimTime at, Callback cb);

  /// Same, for a raw callable: the capture is constructed directly in its
  /// pool slot instead of passing through a temporary Callback.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule(SimTime at, F&& f) {
    checkScheduleTime(at);
    const std::uint32_t slot = allocEmptySlot();
    try {
      slotRef(slot).emplace(std::forward<F>(f));
    } catch (...) {
      free_.push_back(slot);  // capture construction threw; reclaim the slot
      throw;
    }
    return pushEntry(at, slot);
  }

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a no-op. O(1): the entry is tombstoned and
  /// discarded when it reaches the top of the heap or during compaction.
  void cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return liveCount_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return liveCount_; }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime nextTime() const;

  /// Pop and run the earliest live event; returns its time.
  /// Precondition: !empty().
  SimTime runNext();

  /// Discard all events (and the past-scheduling watermark).
  void clear();

  /// Heap entries currently occupied by cancelled events (for tests).
  [[nodiscard]] std::size_t deadEntries() const { return heap_.size() - liveCount_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;          // doubles as the sequence number for tie-breaking
    std::uint32_t slot;  // index of the callback in the pool slab
  };

  /// Callbacks live in fixed-size chunks so growing the pool never relocates
  /// a live callback (no per-element move loop, stable addresses).
  static constexpr std::size_t kPoolChunkShift = 8;
  static constexpr std::size_t kPoolChunkSize = std::size_t{1} << kPoolChunkShift;

  /// Strict weak ordering: earliest (time, id) wins. Written without
  /// short-circuiting so it compiles to flag logic instead of a
  /// data-dependent branch — sift comparisons on random times are otherwise
  /// one misprediction each. (NaN never reaches the heap; schedule() rejects
  /// it.)
  static bool earlier(const Entry& a, const Entry& b) {
    return (a.time < b.time) | ((a.time == b.time) & (a.id < b.id));
  }

  /// Tombstone bit for `id`, packed 64 per word. A hand-rolled bitset beats
  /// std::vector<bool> here: the amortized push in schedule() collapses to a
  /// branch + increment and the per-pop reads are a shift and a mask.
  [[nodiscard]] bool isCancelled(EventId id) const {
    return ((cancelled_[id >> 6] >> (id & 63)) & 1u) != 0;
  }
  void markCancelled(EventId id) const { cancelled_[id >> 6] |= std::uint64_t{1} << (id & 63); }

  [[nodiscard]] Callback& slotRef(std::uint32_t slot) const {
    return pool_[slot >> kPoolChunkShift][slot & (kPoolChunkSize - 1)];
  }

  /// Throws std::logic_error when `at` precedes the last popped event (the
  /// negated comparison also catches NaN, which would poison the heap order).
  void checkScheduleTime(SimTime at) const;
  /// Next free pool slot (grows the slab by one chunk when exhausted); the
  /// slot's Callback is empty.
  std::uint32_t allocEmptySlot();
  /// Register the heap entry for an already-filled slot; returns the id.
  EventId pushEntry(SimTime at, std::uint32_t slot);

  void siftUp(std::size_t i);
  void siftDown(std::size_t i);
  /// Floyd heap construction over the current entries (any order -> heap).
  void rebuild();
  /// Remove heap_[0] (bottom-up: the hole descends along min children to a
  /// leaf, then the displaced last element sifts back up — the displaced
  /// element usually belongs near the bottom, so this does ~1/(arity+1)
  /// fewer comparisons per pop than a classic top-down sift).
  void removeRoot() const;
  /// Drop cancelled entries from the top of the heap; compact the whole heap
  /// when the dead fraction exceeds 1/2.
  void prune() const;
  void popTop() const;
  void freeSlot(std::uint32_t slot) const;

  mutable std::vector<Entry> heap_;
  mutable std::vector<std::unique_ptr<Callback[]>> pool_;  // chunked slab
  std::uint32_t poolSize_ = 0;                  // constructed slots
  mutable std::vector<std::uint32_t> free_;     // recycled pool slots
  mutable std::vector<std::uint64_t> cancelled_;  // EventId-indexed bitset
  EventId nextId_ = 0;
  std::size_t liveCount_ = 0;
  SimTime lastPopped_ = kMinSimTime;
};

}  // namespace ppsched
