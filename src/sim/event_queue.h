// Discrete-event queue.
//
// A binary heap of (time, sequence) keyed events with O(log n) push/pop and
// O(1) lazy cancellation. Sequence numbers make ordering of simultaneous
// events deterministic (FIFO among equal timestamps), which keeps whole
// simulations reproducible for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace ppsched {

/// Identifies a scheduled event so it can be cancelled before it fires.
using EventId = std::uint64_t;

/// Min-heap of timed callbacks with deterministic tie-breaking and lazy
/// cancellation.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` to fire at absolute time `at`. Returns an id usable with
  /// cancel(). `at` must be >= the time of the last popped event.
  EventId schedule(SimTime at, Callback cb);

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a no-op. O(1): the entry is tombstoned and
  /// discarded when it reaches the top of the heap.
  void cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return liveCount_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return liveCount_; }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime nextTime() const;

  /// Pop and run the earliest live event; returns its time.
  /// Precondition: !empty().
  SimTime runNext();

  /// Discard all events.
  void clear();

 private:
  struct Entry {
    SimTime time;
    EventId id;  // doubles as the sequence number for tie-breaking
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  /// Drop cancelled entries from the top of the heap.
  void skipCancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<bool> cancelled_;  // indexed by EventId
  EventId nextId_ = 0;
  std::size_t liveCount_ = 0;
};

}  // namespace ppsched
