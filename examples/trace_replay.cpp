// Trace tooling: synthesize, save, load and replay a job trace.
//
//   trace_replay gen <file> [jobs] [jobs_per_hour] [seed]   synthesize a trace
//   trace_replay run <file> [policy]                        replay it
//   trace_replay info <file>                                summarize it
//   trace_replay scale <in> <out> <factor>   stretch time by <factor>
//                                            (factor 0.5 doubles the load)
//   trace_replay head <in> <out> <n>         keep the first n jobs
//
// Traces are CSV (id,arrival_seconds,begin_event,end_event), so real
// accounting logs can be converted and fed to the simulator.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/engine.h"
#include "core/registry.h"
#include "workload/trace.h"

namespace {

using namespace ppsched;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_replay gen <file> [jobs=500] [jobs_per_hour=1.0] [seed=42]\n"
               "  trace_replay run <file> [policy=out_of_order]\n"
               "  trace_replay info <file>\n"
               "  trace_replay scale <in> <out> <factor>\n"
               "  trace_replay head <in> <out> <n>\n");
  return 2;
}

int scale(const std::string& in, const std::string& out, double factor) {
  if (!(factor > 0.0)) {
    std::fprintf(stderr, "error: factor must be > 0\n");
    return 2;
  }
  const JobTrace trace = JobTrace::load(in);
  std::vector<Job> jobs = trace.jobs();
  for (Job& j : jobs) j.arrival *= factor;
  JobTrace(std::move(jobs)).save(out);
  std::printf("scaled %zu arrivals by %.3f (load x%.3f) -> %s\n", trace.size(), factor,
              1.0 / factor, out.c_str());
  return 0;
}

int head(const std::string& in, const std::string& out, std::size_t n) {
  const JobTrace trace = JobTrace::load(in);
  std::vector<Job> jobs = trace.jobs();
  if (jobs.size() > n) jobs.resize(n);
  const std::size_t kept = jobs.size();
  JobTrace(std::move(jobs)).save(out);
  std::printf("kept first %zu of %zu jobs -> %s\n", kept, trace.size(), out.c_str());
  return 0;
}

int generate(const std::string& file, std::size_t jobs, double load, std::uint64_t seed) {
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.workload.jobsPerHour = load;
  cfg.finalize();
  WorkloadGenerator gen(cfg.workload, seed);
  const JobTrace trace = JobTrace::record(gen, jobs);
  trace.save(file);
  std::printf("wrote %zu jobs to %s\n", trace.size(), file.c_str());
  return 0;
}

int info(const std::string& file) {
  const JobTrace trace = JobTrace::load(file);
  const auto s = trace.summarize();
  std::printf("%s: %zu jobs\n", file.c_str(), s.jobs);
  std::printf("  mean job size:      %.0f events (%.1f GB)\n", s.meanEvents,
              s.meanEvents * 600e3 / 1e9);
  std::printf("  mean interarrival:  %.0f s (%.2f jobs/hour)\n", s.meanInterarrival,
              s.meanInterarrival > 0 ? units::hour / s.meanInterarrival : 0.0);
  std::printf("  trace span:         %.1f h\n", units::toHours(s.span));
  return 0;
}

int run(const std::string& file, const std::string& policy) {
  const JobTrace trace = JobTrace::load(file);
  SimConfig cfg = SimConfig::paperDefaults();
  cfg.finalize();

  MetricsCollector metrics(cfg.cost, WarmupConfig{trace.size() / 10, 0.0});
  Engine engine(cfg, std::make_unique<TraceSource>(trace), makePolicy(policy), metrics);
  engine.run({});

  const RunResult r = metrics.finalize(engine.now());
  std::printf("replayed %zu jobs under '%s' on the paper cluster\n", trace.size(),
              policy.c_str());
  std::printf("  completed:   %zu (makespan %.1f h)\n", r.completedJobs,
              units::toHours(r.simulatedTime));
  std::printf("  speedup:     %.2f\n", r.avgSpeedup);
  std::printf("  mean wait:   %.2f h (p95 %.2f h)\n", units::toHours(r.avgWait),
              units::toHours(r.p95Wait));
  std::printf("  cache hits:  %.0f%%\n", 100.0 * r.cacheHitFraction);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string file = argv[2];
  try {
    if (cmd == "gen") {
      const std::size_t jobs = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 500;
      const double load = argc > 4 ? std::strtod(argv[4], nullptr) : 1.0;
      const std::uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 42;
      return generate(file, jobs, load, seed);
    }
    if (cmd == "info") return info(file);
    if (cmd == "run") return run(file, argc > 3 ? argv[3] : "out_of_order");
    if (cmd == "scale" && argc > 4) {
      return scale(file, argv[3], std::strtod(argv[4], nullptr));
    }
    if (cmd == "head" && argc > 4) {
      return head(file, argv[3], std::strtoull(argv[4], nullptr, 10));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
