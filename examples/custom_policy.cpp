// Writing your own scheduling policy.
//
// The paper's scheduler "implements a plugin model, enabling new scheduling
// policies to be easily added" (§2.3). This example adds one from scratch —
// shortest-job-first with cache-aware placement — entirely outside the
// library, wraps it in the invariant-checking decorator, and races it
// against the paper's policies on one trace.
#include <algorithm>
#include <cstdio>
#include <deque>

#include "core/engine.h"
#include "core/registry.h"
#include "core/validating_policy.h"
#include "sched/split_util.h"
#include "workload/trace.h"

namespace {

using namespace ppsched;

// Shortest-job-first: queued jobs start smallest-first (minimizes mean wait
// for M/G/1-like queues), each split across all idle nodes along cache
// boundaries. Deliberately simple — ~70 lines for a complete policy.
class ShortestJobFirst final : public ISchedulerPolicy {
 public:
  std::string name() const override { return "sjf"; }

  void onJobArrival(const Job& job) override {
    queue_.push_back(job);
    std::sort(queue_.begin(), queue_.end(),
              [](const Job& a, const Job& b) { return a.events() < b.events(); });
    dispatch();
  }

  void onRunFinished(NodeId, const RunReport&) override { dispatch(); }

 private:
  void dispatch() {
    while (!queue_.empty()) {
      auto idle = host().idleNodes();
      if (idle.empty()) return;
      const Job job = queue_.front();
      queue_.pop_front();
      // Cache-aware split, one piece per idle node at most.
      auto pieces = splitByCaches(job, host().cluster(), host().config().minSubjobEvents);
      while (pieces.size() > idle.size()) {
        // Too many pieces: merge the two smallest adjacent ones.
        std::size_t best = 0;
        for (std::size_t i = 0; i + 1 < pieces.size(); ++i) {
          if (pieces[i].subjob.events() + pieces[i + 1].subjob.events() <
              pieces[best].subjob.events() + pieces[best + 1].subjob.events()) {
            best = i;
          }
        }
        pieces[best].subjob.range.end = pieces[best + 1].subjob.range.end;
        pieces.erase(pieces.begin() + static_cast<std::ptrdiff_t>(best) + 1);
      }
      // Prefer placing cached pieces on their node.
      std::vector<bool> nodeUsed(idle.size(), false);
      for (const PlacedSubjob& piece : pieces) {
        NodeId target = kNoNode;
        for (std::size_t i = 0; i < idle.size(); ++i) {
          if (!nodeUsed[i] && idle[i] == piece.cachedOn) {
            target = idle[i];
            nodeUsed[i] = true;
            break;
          }
        }
        if (target == kNoNode) {
          for (std::size_t i = 0; i < idle.size(); ++i) {
            if (!nodeUsed[i]) {
              target = idle[i];
              nodeUsed[i] = true;
              break;
            }
          }
        }
        host().startRun(target, piece.subjob);
      }
    }
  }

  std::deque<Job> queue_;
};

}  // namespace

int main() {
  using namespace ppsched;

  SimConfig cfg = SimConfig::paperDefaults();
  cfg.workload.jobsPerHour = 1.0;
  cfg.finalize();
  WorkloadGenerator gen(cfg.workload, 11);
  const JobTrace trace = JobTrace::record(gen, 400);

  std::printf("%-16s %10s %12s %12s\n", "policy", "speedup", "wait (h)", "p95 (h)");
  auto report = [&](const char* label, std::unique_ptr<ISchedulerPolicy> policy) {
    MetricsCollector metrics(cfg.cost, WarmupConfig{80, 0.0});
    Engine engine(cfg, std::make_unique<TraceSource>(trace), std::move(policy), metrics);
    engine.run({});
    const RunResult r = metrics.finalize(engine.now());
    std::printf("%-16s %10.2f %12.2f %12.2f\n", label, r.avgSpeedup,
                units::toHours(r.avgWait), units::toHours(r.p95Wait));
  };

  report("farm", makePolicy("farm"));
  report("cache_oriented", makePolicy("cache_oriented"));
  // Develop new policies under the validator: any broken invariant throws.
  report("sjf (custom)",
         std::make_unique<ValidatingPolicy>(std::make_unique<ShortestJobFirst>()));
  report("out_of_order", makePolicy("out_of_order"));

  std::printf("\nSJF needs no library changes: subclass ISchedulerPolicy, use the\n"
              "host() API, and hand it to any host. (It beats FIFO policies on\n"
              "mean wait, but the paper's out-of-order policy still wins: knowing\n"
              "where the data is beats knowing how big the job is.)\n");
  return 0;
}
