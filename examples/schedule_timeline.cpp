// Visualize how different policies place the same jobs on the cluster.
//
// Runs a short burst of jobs under three policies with the event log
// attached and renders an ASCII timeline (one row per node, one digit per
// job). Makes the policies' personalities visible at a glance: the farm
// serializes, splitting spreads each job over all nodes, out-of-order
// reorders around cached data.
#include <cstdio>

#include "core/engine.h"
#include "core/registry.h"
#include "core/timeline.h"
#include "workload/trace.h"

int main() {
  using namespace ppsched;

  // Small cluster and jobs so one screen shows everything.
  SimConfig cfg;
  cfg.numNodes = 4;
  cfg.totalDataBytes = 600'000ULL * 200'000;  // 200k events
  cfg.cacheBytesPerNode = 600'000ULL * 50'000;
  cfg.workload.hotRegions.clear();
  cfg.workload.hotProbability = 0.0;
  cfg.finalize();

  // Five jobs; jobs 0 and 3 share a segment (3 will find it cached).
  std::vector<Job> jobs{
      {0, 0.0, {0, 8000}},
      {1, 600.0, {50'000, 56'000}},
      {2, 1200.0, {100'000, 104'000}},
      {3, 1800.0, {0, 8000}},
      {4, 2400.0, {150'000, 153'000}},
  };

  for (const char* policy : {"farm", "splitting", "out_of_order"}) {
    MetricsCollector metrics(cfg.cost, WarmupConfig{0, 0.0});
    Engine engine(cfg, std::make_unique<TraceSource>(JobTrace(jobs)), makePolicy(policy),
                  metrics);
    EventLog log;
    engine.setEventSink(&log);
    engine.run({});

    std::printf("--- %s (makespan %.0f s) ---\n", policy, engine.now());
    TimelineOptions opt;
    opt.end = engine.now();
    opt.width = 64;
    std::fputs(renderTimeline(log, cfg.numNodes, opt).c_str(), stdout);
    const auto util = nodeUtilization(log, cfg.numNodes, 0.0, engine.now());
    std::printf("utilization:");
    for (double u : util) std::printf(" %3.0f%%", 100.0 * u);
    std::printf("\n\n");
  }
  std::printf("Rows are nodes; digits are job ids (mod 10); '.' is idle.\n");
  return 0;
}
