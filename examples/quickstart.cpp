// Quickstart: simulate the paper's cluster under one load with two
// scheduling policies and print the headline metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.h"

int main() {
  using namespace ppsched;

  // The paper's §2.4 configuration: 10 nodes, 2 TB data space, 100 GB disk
  // cache per node, Erlang-sized jobs over a hot-spotted data space.
  ExperimentSpec spec;
  spec.sim = SimConfig::paperDefaults();
  spec.jobsPerHour = 1.0;
  spec.warmupJobs = 150;
  spec.measuredJobs = 500;

  std::printf("ppsched quickstart: %d nodes, %.0f GB cache/node, load %.2f jobs/hour\n",
              spec.sim.numNodes, spec.sim.cacheBytesPerNode / 1e9, spec.jobsPerHour);
  std::printf("mean single-node job time: %.0f s (paper: 32000 s)\n",
              spec.sim.meanSingleNodeTime());
  std::printf("max theoretical load: %.2f jobs/hour (paper: 3.46)\n\n",
              spec.sim.maxTheoreticalLoadJobsPerHour());

  std::printf("%-16s %10s %14s %12s %10s\n", "policy", "speedup", "wait", "cache-hit",
              "overload");
  for (const char* policy : {"farm", "splitting", "cache_oriented", "out_of_order"}) {
    spec.policyName = policy;
    const RunResult r = runExperiment(spec);
    std::printf("%-16s %10.2f %12.2f h %11.0f%% %10s\n", policy, r.avgSpeedup,
                units::toHours(r.avgWait), 100.0 * r.cacheHitFraction,
                r.overloaded ? "yes" : "no");
  }
  std::printf("\nSpeedup = (single-node, no-cache job time) / (parallel processing time).\n");
  return 0;
}
