// The paper's dual-use claim (§2.3), demonstrated.
//
// "The job parallelization and scheduling software may run both on the
// simulated and on the target system (production environment)."
//
// This demo takes one scheduling policy and one set of jobs and executes
// them twice:
//   1. on the discrete-event simulator (instant), and
//   2. on the wall-clock RealtimeHost, where every node is a live executor
//      thread and 10 simulated minutes pass per wall millisecond.
// The per-job processing times must agree (up to OS jitter on the realtime
// side) because both hosts run the *identical* policy code.
#include <cstdio>

#include "core/engine.h"
#include "core/registry.h"
#include "runtime/realtime_host.h"
#include "workload/trace.h"

int main() {
  using namespace ppsched;
  using namespace std::chrono_literals;

  SimConfig cfg;
  cfg.numNodes = 4;
  cfg.totalDataBytes = 600'000ULL * 500'000;
  cfg.cacheBytesPerNode = 600'000ULL * 100'000;
  cfg.workload.hotRegions.clear();
  cfg.workload.hotProbability = 0.0;
  cfg.finalize();

  const std::vector<EventRange> segments{
      {0, 6000}, {100'000, 105'000}, {0, 6000}, {200'000, 203'000}, {100'000, 104'000}};

  // --- Pass 1: discrete-event simulation --------------------------------
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    jobs.push_back({static_cast<JobId>(i), static_cast<SimTime>(i), segments[i]});
  }
  MetricsCollector simMetrics(cfg.cost, WarmupConfig{0, 0.0});
  Engine engine(cfg, std::make_unique<TraceSource>(JobTrace(jobs)),
                makePolicy("out_of_order"), simMetrics);
  engine.run({});

  // --- Pass 2: wall-clock execution with live node threads --------------
  MetricsCollector rtMetrics(cfg.cost, WarmupConfig{0, 0.0});
  RealtimeOptions opt;
  opt.timeScale = 600'000.0;  // 10 simulated minutes per wall millisecond
  RealtimeHost host(cfg, makePolicy("out_of_order"), rtMetrics, opt);
  for (const EventRange& segment : segments) host.submit(segment);
  const bool drained = host.drain(30'000ms);

  std::printf("same policy (out_of_order), same %zu jobs, two hosts\n\n", segments.size());
  std::printf("%-5s %-18s %18s %20s\n", "job", "segment", "simulated proc (s)",
              "wall-clock proc (s)");
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& s = simMetrics.record(static_cast<JobId>(i));
    const auto& r = rtMetrics.record(static_cast<JobId>(i));
    std::printf("%-5zu [%llu,%llu)%*s %18.0f %20.0f\n", i,
                static_cast<unsigned long long>(segments[i].begin),
                static_cast<unsigned long long>(segments[i].end),
                (int)(16 - std::to_string(segments[i].end).size() -
                      std::to_string(segments[i].begin).size()),
                "", s.processingTime(), r.completed() ? r.processingTime() : -1.0);
  }
  std::printf("\nrealtime host drained: %s. The two columns agree up to OS jitter\n"
              "and tie-breaks that depend on exact event timing — the policy code\n"
              "driving both hosts is byte-for-byte the same.\n",
              drained ? "yes" : "NO");
  return drained ? 0 : 1;
}
