// Policy bake-off on an identical, replayed job trace.
//
// Demonstrates the trace API: synthesize one workload, record it, and
// replay the exact same job stream through all seven scheduling policies —
// the apples-to-apples comparison the paper's figures are built on.
#include <cstdio>

#include "core/engine.h"
#include "core/registry.h"
#include "workload/trace.h"

int main() {
  using namespace ppsched;

  SimConfig cfg = SimConfig::paperDefaults();
  cfg.workload.jobsPerHour = 1.0;
  cfg.finalize();

  // Record one trace; every policy replays the identical stream.
  WorkloadGenerator gen(cfg.workload, 7);
  const JobTrace trace = JobTrace::record(gen, 600);
  const auto summary = trace.summarize();
  std::printf("trace: %zu jobs, mean %.0f events, mean interarrival %.0f s (%.2f jobs/h)\n\n",
              summary.jobs, summary.meanEvents, summary.meanInterarrival,
              units::hour / summary.meanInterarrival);

  std::printf("%-16s %10s %12s %12s %10s %12s\n", "policy", "speedup", "wait", "p95 wait",
              "hit %", "makespan");
  for (const std::string& name : policyNames()) {
    PolicyParams params;
    params.periodDelay = 12 * units::hour;  // for "delayed"
    params.stripeEvents = 1000;

    MetricsCollector metrics(cfg.cost, WarmupConfig{100, 0.0});
    Engine engine(cfg, std::make_unique<TraceSource>(trace), makePolicy(name, params),
                  metrics);
    engine.run({});  // drain the whole trace

    const RunResult r = metrics.finalize(engine.now());
    std::printf("%-16s %10.2f %10.2f h %10.2f h %9.0f%% %10.1f h\n", name.c_str(),
                r.avgSpeedup, units::toHours(r.avgWait), units::toHours(r.p95Wait),
                100.0 * r.cacheHitFraction, units::toHours(engine.now()));
  }

  std::printf("\nSame jobs, same arrival times — only the scheduling policy differs.\n"
              "(\"delayed\" runs with a 12 h period; its waits include that delay.)\n");
  return 0;
}
