// LHCb analysis scenario: a physics working group's day on the cluster.
//
// Models the workload the paper's introduction motivates: a community of
// physicists analysing partly-overlapping slices of the event store. A hot
// "interesting physics" region (B-meson candidates) attracts half of the
// jobs; the rest scan the bulk of the 2 TB data space. We follow one
// simulated week under out-of-order scheduling and report what a cluster
// operator would look at: utilization, hit rates, per-job latencies, and
// the fate of the unluckiest job.
#include <cstdio>

#include "core/engine.h"
#include "core/registry.h"
#include "workload/generator.h"

int main() {
  using namespace ppsched;

  SimConfig cfg = SimConfig::paperDefaults();
  cfg.finalize();

  // 1.5 jobs/hour: a busy day — beyond what the processing farm could take
  // (1.125), routine for out-of-order scheduling.
  cfg.workload.jobsPerHour = 1.5;

  MetricsCollector metrics(cfg.cost, WarmupConfig{100, 0.0});
  Engine engine(cfg, std::make_unique<WorkloadGenerator>(cfg.workload, 2026),
                makePolicy("out_of_order"), metrics);

  StopCondition stop;
  stop.simTimeLimit = 7 * units::day + 0.0;
  stop.maxJobsInSystem = 1000;
  engine.run(stop);

  const RunResult r = metrics.finalize(engine.now(), /*withHistogram=*/true);

  std::printf("One simulated week of LHCb-style analysis, out-of-order scheduling\n");
  std::printf("cluster: %d nodes, %.0f GB cache each, %.1f TB event store\n",
              cfg.numNodes, cfg.cacheBytesPerNode / 1e9, cfg.totalDataBytes / 1e12);
  std::printf("load: %.2f jobs/hour (farm limit: %.2f, theoretical max: %.2f)\n\n",
              cfg.workload.jobsPerHour, cfg.maxFarmLoadJobsPerHour(),
              cfg.maxTheoreticalLoadJobsPerHour());

  std::printf("jobs arrived / completed:  %zu / %zu\n", r.arrivedJobs, r.completedJobs);
  std::printf("throughput:                %.2f jobs/hour\n", r.throughputJobsPerHour);
  std::printf("mean speedup:              %.1f (single-node job: %.1f h)\n", r.avgSpeedup,
              units::toHours(cfg.meanSingleNodeTime()));
  std::printf("cache hit rate:            %.0f%%\n", 100.0 * r.cacheHitFraction);
  std::printf("waiting time:              mean %.1f min | median %.1f min | p95 %.1f h\n",
              r.avgWait / units::minute, r.medianWait / units::minute,
              units::toHours(r.p95Wait));
  std::printf("worst waiting time:        %.1f h (starvation guard caps this at ~2 days)\n\n",
              units::toHours(r.maxWait));

  std::printf("waiting-time distribution (measured jobs):\n");
  for (const auto& [lo, count] : r.waitHistogram) {
    if (count == 0) continue;
    std::printf("  >= %6.2f h : %llu\n", units::toHours(lo),
                static_cast<unsigned long long>(count));
  }

  std::printf("\ncluster cache state at end of week: %.1f GB cached across nodes\n",
              static_cast<double>(engine.cluster().totalCachedEvents()) *
                  cfg.cost.bytesPerEvent / 1e9);
  return 0;
}
