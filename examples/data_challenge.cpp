// Data challenge: reprocess the full event store.
//
// LHC experiments periodically run "data challenges": every event on tape
// is reprocessed once. Unlike the paper's Poisson analysis mix, the
// workload is a fixed batch of back-to-back jobs tiling the whole 2 TB
// store — so the interesting numbers are the makespan and how close each
// policy gets to the tertiary-bandwidth lower bound (each byte must cross
// the 1 MB/s-per-node tertiary link at least once).
#include <cstdio>

#include "core/engine.h"
#include "core/registry.h"
#include "workload/trace.h"

int main() {
  using namespace ppsched;

  SimConfig cfg = SimConfig::paperDefaults();
  cfg.finalize();

  // Tile the data space into 40000-event jobs, all submitted in one burst
  // (a campaign script queues everything at once).
  std::vector<Job> jobs;
  const std::uint64_t jobEvents = 40'000;
  EventIndex cursor = 0;
  JobId id = 0;
  while (cursor < cfg.totalEvents()) {
    const EventIndex end = std::min<EventIndex>(cursor + jobEvents, cfg.totalEvents());
    jobs.push_back({id, static_cast<SimTime>(id), {cursor, end}});
    cursor = end;
    ++id;
  }

  // Lower bound: every event crosses a tertiary link once, 10 links, plus
  // the CPU pass, perfectly overlapped across nodes.
  const double totalEvents = static_cast<double>(cfg.totalEvents());
  const double bound =
      totalEvents * cfg.cost.uncachedSecPerEvent() / cfg.numNodes;

  std::printf("data challenge: %zu jobs covering %.1f TB (%.0f events)\n", jobs.size(),
              cfg.totalDataBytes / 1e12, totalEvents);
  std::printf("tertiary-bound makespan: %.1f h\n\n", units::toHours(bound));

  std::printf("%-16s %14s %16s %12s\n", "policy", "makespan (h)", "vs bound", "hit %");
  for (const char* policy : {"farm", "splitting", "out_of_order", "delayed"}) {
    PolicyParams params;
    params.periodDelay = 12 * units::hour;
    params.stripeEvents = 5000;
    MetricsCollector metrics(cfg.cost, WarmupConfig{0, 0.0});
    Engine engine(cfg, std::make_unique<TraceSource>(JobTrace(jobs)),
                  makePolicy(policy, params), metrics);
    engine.run({});
    const RunResult r = metrics.finalize(engine.now());
    std::printf("%-16s %14.1f %15.2fx %11.0f%%\n", policy, units::toHours(engine.now()),
                engine.now() / bound, 100.0 * r.cacheHitFraction);
  }

  std::printf("\nA disjoint tiling leaves nothing to cache (hit %% ~0), so every\n"
              "policy is pinned to the tertiary bound; the schedulers differ only\n"
              "in how little they waste on top of it. This is the workload where\n"
              "the paper's caching machinery cannot help — and correctly doesn't.\n");
  return 0;
}
